"""Tests for anonymized trace export/import."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import Anonymizer, export_trace, import_trace
from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord, LoginRecord, RegistrationRecord
from repro.net.geo import GeoDatabase, GeoRecord


@pytest.fixture
def trace():
    logs = LogStore()
    geodb = GeoDatabase()
    geodb.register("10.0.0.1", GeoRecord("DE", "Europe", "Berlin", 52.5, 13.4,
                                         "UTC", "isp-1", 1100))
    geodb.register("10.0.0.2", GeoRecord("FR", "Europe", "Paris", 48.9, 2.3,
                                         "UTC", "isp-2", 1200))
    logs.add_login(LoginRecord("guid-A", "10.0.0.1", 1.0, "ns-3.6-cp1001",
                               True, ("s2", "s1")))
    logs.add_login(LoginRecord("guid-B", "10.0.0.2", 2.0, "ns-3.6-cp1002",
                               False))
    logs.add_download(DownloadRecord(
        guid="guid-A", url="prov/file.bin", cid="cid-1", cp_code=1001,
        size=1000, started_at=3.0, ended_at=13.0, edge_bytes=400,
        peer_bytes=600, p2p_enabled=True, outcome="completed",
        ip="10.0.0.1", peers_initially_returned=5,
        per_uploader_bytes={"guid-B": 600}))
    logs.add_registration(RegistrationRecord("guid-A", "cid-1", 14.0, "eu"))
    return logs, geodb


class TestAnonymizer:
    def test_consistent_within_salt(self):
        anon = Anonymizer("s1")
        assert anon.token("guid", "x") == anon.token("guid", "x")

    def test_namespaced(self):
        anon = Anonymizer("s1")
        assert anon.token("guid", "x") != anon.token("ip", "x")

    def test_different_salts_unlinkable(self):
        assert Anonymizer("s1").token("guid", "x") != Anonymizer("s2").token("guid", "x")

    def test_empty_passthrough(self):
        assert Anonymizer().token("ip", "") == ""


class TestRoundTrip:
    def test_counts(self, trace, tmp_path):
        logs, geodb = trace
        counts = export_trace(logs, geodb, tmp_path)
        assert counts == {"downloads": 1, "logins": 2, "registrations": 1,
                          "geolocation": 2}

    def test_raw_identifiers_absent_from_files(self, trace, tmp_path):
        logs, geodb = trace
        export_trace(logs, geodb, tmp_path)
        blob = "".join(p.read_text() for p in tmp_path.glob("*.jsonl"))
        for secret in ("guid-A", "guid-B", "10.0.0.1", "prov/file.bin", "s1"):
            assert secret not in blob

    def test_joins_survive_roundtrip(self, trace, tmp_path):
        logs, geodb = trace
        export_trace(logs, geodb, tmp_path)
        logs2, geodb2 = import_trace(tmp_path)
        # download -> geo join
        rec = logs2.downloads[0]
        geo = geodb2.get(rec.ip)
        assert geo is not None and geo.country_code == "DE"
        # download.per_uploader -> login join
        uploader = next(iter(rec.per_uploader_bytes))
        assert uploader in logs2.logins_by_guid()

    def test_analyses_run_on_reimport(self, trace, tmp_path):
        from repro.analysis import mobility_summary, offload_summary, table1_overall_statistics
        logs, geodb = trace
        export_trace(logs, geodb, tmp_path)
        logs2, geodb2 = import_trace(tmp_path)
        assert offload_summary(logs2).mean_peer_efficiency == pytest.approx(0.6)
        stats = table1_overall_statistics(logs2, geodb2)
        assert stats.guids == 2
        assert mobility_summary(logs2, geodb2).guids == 2

    def test_values_preserved(self, trace, tmp_path):
        logs, geodb = trace
        export_trace(logs, geodb, tmp_path)
        logs2, _ = import_trace(tmp_path)
        rec = logs2.downloads[0]
        assert rec.size == 1000
        assert rec.edge_bytes == 400
        assert rec.peer_bytes == 600
        assert rec.outcome == "completed"
        login = logs2.logins[0]
        assert login.software_version == "ns-3.6-cp1001"
        assert len(login.secondary_guids) == 2

    def test_jsonl_is_valid(self, trace, tmp_path):
        logs, geodb = trace
        export_trace(logs, geodb, tmp_path)
        for path in tmp_path.glob("*.jsonl"):
            for line in path.read_text().splitlines():
                json.loads(line)
