"""Tests for the §6.2 analyses: mobility and secondary-GUID graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.guid_graphs import (
    build_secondary_guid_graphs, classify_graph, figure12_pattern_census,
    mobility_summary,
)
from repro.analysis.logstore import LogStore
from repro.analysis.records import LoginRecord
from repro.net.geo import GeoDatabase, GeoRecord


def chain_graph(*edges):
    g = nx.DiGraph()
    g.add_edges_from(edges)
    return g


class TestClassification:
    def test_linear_chain(self):
        g = chain_graph(("1", "2"), ("2", "3"), ("3", "4"))
        assert classify_graph(g) == "linear"

    def test_one_short_branch_failed_update(self):
        # 1→2→3→4 with dead branch 2→X.
        g = chain_graph(("1", "2"), ("2", "3"), ("3", "4"), ("2", "X"))
        assert classify_graph(g) == "one_short_branch"

    def test_two_long_branches_restored_backup(self):
        g = chain_graph(("1", "2"), ("2", "3"), ("3", "4"),
                        ("2", "b1"), ("b1", "b2"))
        assert classify_graph(g) == "two_long_branches"

    def test_several_branches_reimaging(self):
        g = chain_graph(("m", "a1"), ("m", "b1"), ("m", "c1"), ("a1", "a2"))
        assert classify_graph(g) == "several_branches"

    def test_merge_is_irregular(self):
        g = chain_graph(("1", "3"), ("2", "3"))
        assert classify_graph(g) == "irregular"

    def test_two_roots_is_irregular(self):
        g = chain_graph(("1", "2"), ("a", "b"))
        assert classify_graph(g) == "irregular"

    def test_empty_graph_irregular(self):
        assert classify_graph(nx.DiGraph()) == "irregular"


class TestGraphConstruction:
    @staticmethod
    def store_with_history(histories, guid="g1"):
        store = LogStore()
        for i, history in enumerate(histories):
            store.add_login(LoginRecord(
                guid=guid, ip="1.1.1.1", timestamp=float(i),
                software_version="v", uploads_enabled=True,
                secondary_guids=tuple(history)))
        return store

    def test_normal_boots_build_a_chain(self):
        store = self.store_with_history([
            ("s1",), ("s2", "s1"), ("s3", "s2", "s1"),
        ])
        graphs = build_secondary_guid_graphs(store, min_vertices=3)
        assert classify_graph(graphs["g1"]) == "linear"

    def test_rollback_builds_a_tree(self):
        # Boot s1,s2,s3 then roll back to s1 and boot s4: branch at s1.
        store = self.store_with_history([
            ("s1",), ("s2", "s1"), ("s3", "s2", "s1"), ("s4", "s1"),
        ])
        graphs = build_secondary_guid_graphs(store, min_vertices=3)
        cls = classify_graph(graphs["g1"])
        assert cls != "linear"

    def test_min_vertices_filter(self):
        store = self.store_with_history([("s1",), ("s2", "s1")])
        assert build_secondary_guid_graphs(store, min_vertices=3) == {}

    def test_duplicate_logins_collapse(self):
        store = self.store_with_history([
            ("s2", "s1"), ("s2", "s1"), ("s3", "s2", "s1"),
        ])
        graphs = build_secondary_guid_graphs(store, min_vertices=3)
        g = graphs["g1"]
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2


class TestCensus:
    def test_census_shares_sum(self):
        store = TestGraphConstruction.store_with_history([
            ("s1",), ("s2", "s1"), ("s3", "s2", "s1"),
        ])
        census = figure12_pattern_census(store)
        assert census["linear"] == 1.0
        assert census["nonlinear"] == 0.0
        assert census["graphs"] == 1

    def test_empty_store(self):
        assert figure12_pattern_census(LogStore()) == {}


class TestMobilitySummary:
    @staticmethod
    def build(geo_specs):
        """geo_specs: list of (guid, asn, lat, lon) logins."""
        store = LogStore()
        geodb = GeoDatabase()
        for i, (guid, asn, lat, lon) in enumerate(geo_specs):
            ip = f"ip{i}"
            geodb.register(ip, GeoRecord(
                country_code="DE", region="Europe", city="X", lat=lat,
                lon=lon, timezone="UTC", network="n", asn=asn))
            store.add_login(LoginRecord(
                guid=guid, ip=ip, timestamp=float(i * 60),
                software_version="v", uploads_enabled=True))
        return store, geodb

    def test_single_as_guid(self):
        store, geodb = self.build([("g1", 1, 50.0, 8.0), ("g1", 1, 50.0, 8.0)])
        summary = mobility_summary(store, geodb)
        assert summary.one_as == 1.0
        assert summary.within_10km == 1.0

    def test_two_as_guid(self):
        store, geodb = self.build([("g1", 1, 50.0, 8.0), ("g1", 2, 50.0, 8.0)])
        summary = mobility_summary(store, geodb)
        assert summary.two_as == 1.0

    def test_more_as_guid(self):
        store, geodb = self.build([
            ("g1", 1, 50, 8), ("g1", 2, 50, 8), ("g1", 3, 50, 8)])
        summary = mobility_summary(store, geodb)
        assert summary.more_as == 1.0

    def test_distance_classification(self):
        store, geodb = self.build([
            ("near", 1, 50.0, 8.0), ("near", 1, 50.05, 8.0),   # ~5.5 km
            ("far", 2, 50.0, 8.0), ("far", 2, 51.0, 8.0),      # ~111 km
        ])
        summary = mobility_summary(store, geodb)
        assert summary.within_10km == 0.5
        assert summary.beyond_10km == 0.5

    def test_empty_store(self):
        summary = mobility_summary(LogStore(), GeoDatabase())
        assert summary.guids == 0
