"""Tests for the log store."""

from __future__ import annotations

from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord, LoginRecord, RegistrationRecord


def dl(guid="g1", cid="c1", url="u1", outcome="completed", ip="1.1.1.1", **kw):
    defaults = dict(cp_code=1, size=100, started_at=0.0, ended_at=10.0,
                    edge_bytes=60, peer_bytes=40, p2p_enabled=True)
    defaults.update(kw)
    return DownloadRecord(guid=guid, url=url, cid=cid, outcome=outcome,
                          ip=ip, **defaults)


def login(guid="g1", ip="1.1.1.1", t=0.0):
    return LoginRecord(guid=guid, ip=ip, timestamp=t,
                       software_version="v", uploads_enabled=True)


class TestStore:
    def test_entry_count_spans_all_types(self):
        store = LogStore()
        store.add_download(dl())
        store.add_login(login())
        store.add_registration(RegistrationRecord("g1", "c1", 0.0, "eu"))
        assert store.entry_count() == 3

    def test_distinct_guids_across_types(self):
        store = LogStore()
        store.add_download(dl(guid="a"))
        store.add_login(login(guid="b"))
        store.add_registration(RegistrationRecord("c", "c1", 0.0, "eu"))
        assert store.distinct_guids() == {"a", "b", "c"}

    def test_distinct_ips_ignores_empty(self):
        store = LogStore()
        store.add_download(dl(ip=""))
        store.add_login(login(ip="2.2.2.2"))
        assert store.distinct_ips() == {"2.2.2.2"}

    def test_groupings_are_complete(self):
        store = LogStore()
        store.add_download(dl(cid="c1"))
        store.add_download(dl(cid="c1", guid="g2"))
        store.add_download(dl(cid="c2"))
        groups = store.downloads_by_cid()
        assert len(groups["c1"]) == 2
        assert len(groups["c2"]) == 1

    def test_index_invalidated_on_append(self):
        store = LogStore()
        store.add_download(dl(cid="c1"))
        assert len(store.downloads_by_cid()["c1"]) == 1
        store.add_download(dl(cid="c1"))
        assert len(store.downloads_by_cid()["c1"]) == 2

    def test_logins_by_guid_preserves_order(self):
        store = LogStore()
        store.add_login(login(t=3.0))
        store.add_login(login(t=1.0))
        times = [r.timestamp for r in store.logins_by_guid()["g1"]]
        assert times == [3.0, 1.0]  # append order, not sorted

    def test_completed_downloads_filter(self):
        store = LogStore()
        store.add_download(dl(outcome="completed"))
        store.add_download(dl(outcome="aborted"))
        assert len(list(store.completed_downloads())) == 1


class TestRecordProperties:
    def test_peer_fraction(self):
        rec = dl(edge_bytes=25, peer_bytes=75)
        assert rec.peer_fraction == 0.75

    def test_peer_fraction_zero_bytes(self):
        rec = dl(edge_bytes=0, peer_bytes=0)
        assert rec.peer_fraction == 0.0

    def test_average_speed(self):
        rec = dl(edge_bytes=500, peer_bytes=500, started_at=0.0, ended_at=10.0)
        assert rec.average_speed_bps() == 100.0

    def test_average_speed_zero_duration(self):
        rec = dl(started_at=5.0, ended_at=5.0)
        assert rec.average_speed_bps() == 0.0
