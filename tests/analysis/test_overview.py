"""Tests for the §4 overview analyses."""

from __future__ import annotations

import pytest

from repro.analysis.logstore import LogStore
from repro.analysis.overview import (
    figure2_peer_distribution, table1_overall_statistics,
    table2_provider_regions,
)
from repro.analysis.records import DownloadRecord, LoginRecord
from repro.net.geo import GeoDatabase, GeoRecord


def geo(asn=1, country="DE", region="Europe", lat=50.0, lon=8.0):
    return GeoRecord(country, region, "B", lat, lon, "UTC", "isp", asn)


def dl(guid="g", cid="c", ip="ip1", cp=1, t=0.0):
    return DownloadRecord(
        guid=guid, url=cid, cid=cid, cp_code=cp, size=10, started_at=t,
        ended_at=t + 1, edge_bytes=10, peer_bytes=0, p2p_enabled=False,
        outcome="completed", ip=ip)


class TestTable1:
    def test_counts(self):
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("ip1", geo(asn=1))
        geodb.register("ip2", geo(asn=2, country="FR"))
        store.add_login(LoginRecord("g1", "ip1", 0.0, "v", True))
        store.add_login(LoginRecord("g2", "ip2", 1.0, "v", True))
        store.add_download(dl(guid="g1", ip="ip1"))
        stats = table1_overall_statistics(store, geodb)
        assert stats.guids == 2
        assert stats.distinct_ips == 2
        assert stats.downloads_initiated == 1
        assert stats.distinct_asns == 2
        assert stats.distinct_countries == 2
        assert stats.log_entries == 3

    def test_rows_render(self):
        stats = table1_overall_statistics(LogStore(), GeoDatabase())
        labels = [label for label, _v in stats.rows()]
        assert "Number of GUIDs" in labels


class TestTable2:
    def test_row_normalisation(self):
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("eu", geo(region="Europe"))
        geodb.register("us", geo(asn=2, country="US", region="US East"))
        store.add_download(dl(guid="a", ip="eu", cp=7))
        store.add_download(dl(guid="b", ip="eu", cp=7))
        store.add_download(dl(guid="c", ip="us", cp=7))
        table = table2_provider_regions(store, geodb)
        row = table["cp7"]
        assert row["Europe"] == pytest.approx(2 / 3)
        assert row["US East"] == pytest.approx(1 / 3)
        assert sum(row.values()) == pytest.approx(1.0)

    def test_all_customers_row_present(self):
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("eu", geo())
        store.add_download(dl(ip="eu"))
        table = table2_provider_regions(store, geodb)
        assert "All customers" in table

    def test_top_n_limits_providers(self):
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("eu", geo())
        for cp in range(1, 6):
            store.add_download(dl(guid=f"g{cp}", ip="eu", cp=cp))
        table = table2_provider_regions(store, geodb, top_n=2)
        provider_rows = [k for k in table if k.startswith("cp")]
        assert len(provider_rows) == 2


class TestFigure2:
    def test_bubbles_keyed_by_first_connection(self):
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("home", geo(lat=50.0, lon=8.0))
        geodb.register("away", geo(lat=40.0, lon=-74.0))
        store.add_login(LoginRecord("g1", "home", 0.0, "v", True))
        store.add_login(LoginRecord("g1", "away", 5.0, "v", True))
        bubbles = figure2_peer_distribution(store, geodb)
        assert bubbles == {(50.0, 8.0): 1}

    def test_multiple_peers_same_location_aggregate(self):
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("x", geo())
        for g in "abc":
            store.add_login(LoginRecord(g, "x", 0.0, "v", True))
        bubbles = figure2_peer_distribution(store, geodb)
        assert bubbles == {(50.0, 8.0): 3}
