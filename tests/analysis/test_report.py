"""Tests for the text renderers."""

from __future__ import annotations

from repro.analysis.report import (
    human_bytes, pct, render_comparison, render_series, render_table,
)


class TestFormatting:
    def test_pct(self):
        assert pct(0.714) == "71.4%"
        assert pct(0.0055, digits=2) == "0.55%"

    def test_human_bytes(self):
        assert human_bytes(500) == "500.0B"
        assert human_bytes(163e9) == "163.0GB"
        assert human_bytes(34.2e12) == "34.2TB"


class TestTables:
    def test_render_table_includes_all_cells(self):
        text = render_table("T", ["a", "b"], [("x", 1), ("y", 2)])
        assert "T" in text
        for cell in ("a", "b", "x", "y", "1", "2"):
            assert cell in text

    def test_render_comparison(self):
        text = render_comparison("C", [("metric", "1.7%", "1.9%")])
        assert "paper" in text
        assert "1.7%" in text and "1.9%" in text

    def test_column_alignment_consistent(self):
        text = render_table("T", ["col"], [("short",), ("much-longer-cell",)])
        lines = text.splitlines()
        data = [l for l in lines if "short" in l or "much-longer" in l]
        assert len(set(len(l.rstrip()) for l in data)) <= 2


class TestSeries:
    def test_downsamples_long_series(self):
        points = [(float(i), float(i * i)) for i in range(200)]
        text = render_series("S", {"line": points}, samples=10)
        data_lines = [l for l in text.splitlines() if l.startswith("  ")]
        assert len(data_lines) == 10

    def test_short_series_shown_fully(self):
        points = [(1.0, 2.0), (3.0, 4.0)]
        text = render_series("S", {"line": points})
        assert "(2 points)" in text

    def test_empty_series_marked(self):
        text = render_series("S", {"line": []})
        assert "(empty)" in text
