"""Tests for the statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    bin_index, cdf_points, gini, log_bins, mean, percentile, weighted_fraction,
)


class TestCdf:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_single_value(self):
        assert cdf_points([5.0]) == [(5.0, 1.0)]

    def test_sorted_and_ends_at_one(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert [v for v, _ in points] == [1.0, 2.0, 3.0]
        assert points[-1][1] == 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_cdf_monotone(self, values):
        points = cdf_points(values)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_bounds(self):
        values = [1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestMean:
    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_accepts_generator(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0


class TestLogBins:
    def test_edges_cover_range(self):
        edges = log_bins(10.0, 1e4)
        assert edges[0] <= 10.0
        assert edges[-1] >= 1e4

    def test_edges_increase(self):
        edges = log_bins(1.0, 1000.0, per_decade=3)
        assert edges == sorted(edges)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            log_bins(0.0, 10.0)

    def test_bin_index_boundaries(self):
        edges = [1.0, 10.0, 100.0]
        assert bin_index(edges, 0.5) == 0
        assert bin_index(edges, 5.0) == 0
        assert bin_index(edges, 50.0) == 1
        assert bin_index(edges, 5000.0) == 1

    def test_bin_index_needs_two_edges(self):
        with pytest.raises(ValueError):
            bin_index([1.0], 5.0)


class TestWeightedFraction:
    def test_basic(self):
        assert weighted_fraction([(1.0, 2.0), (1.0, 2.0)]) == 0.5

    def test_zero_denominator(self):
        assert weighted_fraction([(0.0, 0.0)]) == 0.0


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration_near_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini(values) > 0.95

    def test_empty_is_zero(self):
        assert gini([]) == 0.0

    def test_all_zeros(self):
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1.0, 1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_bounded(self, values):
        g = gini(values)
        assert -1e-9 <= g <= 1.0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=30),
           st.floats(min_value=0.1, max_value=100.0))
    def test_scale_invariant(self, values, factor):
        assert gini(values) == pytest.approx(gini([v * factor for v in values]),
                                             abs=1e-9)
