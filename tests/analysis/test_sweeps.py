"""Tests for the parameter-sweep harness."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import (
    SweepResult, sweep, sweep_upload_enabled, sweep_warm_copies,
)
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)


def tiny_base(seed=3):
    return ScenarioConfig(
        seed=seed, duration_days=1.0,
        population=PopulationConfig(n_peers=150),
        catalog=CatalogConfig(objects_per_provider=8),
        demand=DemandConfig(total_downloads=120, duration_days=1.0),
    )


class TestSweepHarness:
    def test_generic_sweep_runs_each_value(self):
        from dataclasses import replace
        result = sweep(
            "warm", [0.0, 2.0],
            lambda base, v: replace(base, warm_copies_per_peer=v),
            base=tiny_base(),
        )
        assert isinstance(result, SweepResult)
        assert [p.knob for p in result.points] == [0.0, 2.0]
        for point in result.points:
            assert 0.0 <= point.byte_weighted_efficiency <= 1.0
            assert 0.0 <= point.completed_fraction <= 1.0

    def test_series_extraction(self):
        from dataclasses import replace
        result = sweep(
            "warm", [0.0, 2.0],
            lambda base, v: replace(base, warm_copies_per_peer=v),
            base=tiny_base(),
        )
        series = result.series("p2p_byte_share")
        assert len(series) == 2
        assert series[0][0] == 0.0

    def test_warm_copies_raise_efficiency(self):
        result = sweep_warm_copies([0.0, 4.0], seed=5, base=tiny_base(5))
        low = result.points[0].byte_weighted_efficiency
        high = result.points[-1].byte_weighted_efficiency
        assert high > low

    def test_upload_rate_override_changes_population(self):
        result = sweep_upload_enabled([0.02, 0.9], seed=5, base=tiny_base(5))
        low = result.points[0].byte_weighted_efficiency
        high = result.points[-1].byte_weighted_efficiency
        assert high > low

    def test_monotonicity_helper(self):
        from repro.analysis.sweeps import SweepPoint
        rising = SweepResult("k", (
            SweepPoint(0, 0.1, 0.1, 0.1, 1.0),
            SweepPoint(1, 0.5, 0.5, 0.5, 1.0),
        ))
        falling = SweepResult("k", (
            SweepPoint(0, 0.5, 0.5, 0.5, 1.0),
            SweepPoint(1, 0.1, 0.1, 0.1, 1.0),
        ))
        assert rising.is_monotone_nondecreasing()
        assert not falling.is_monotone_nondecreasing()
