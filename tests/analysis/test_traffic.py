"""Tests for the §6.1 inter-AS traffic analyses."""

from __future__ import annotations

import random

import pytest

from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord, LoginRecord
from repro.analysis.traffic import (
    build_traffic_matrix, figure9a_upload_cdf, figure9b_cumulative_contribution,
    figure9c_ips_per_as, figure10_balance_scatter, figure11_pair_balance,
    heavy_uploader_ases,
)
from repro.net.geo import GeoDatabase, GeoRecord


def geo(asn):
    return GeoRecord("DE", "Europe", "B", 50.0, 8.0, "UTC", "isp", asn)


def build_env(flows, extra_logins=()):
    """flows: list of (uploader_guid, up_asn, downloader_guid, down_asn, bytes)."""
    store = LogStore()
    geodb = GeoDatabase()
    ips = {}

    def ip_for(guid, asn):
        key = (guid, asn)
        if key not in ips:
            ip = f"ip-{guid}-{asn}"
            geodb.register(ip, geo(asn))
            ips[key] = ip
        return ips[key]

    seen_logins = set()
    for up_guid, up_asn, down_guid, down_asn, nbytes in flows:
        if (up_guid, up_asn) not in seen_logins:
            store.add_login(LoginRecord(up_guid, ip_for(up_guid, up_asn), 0.0,
                                        "v", True))
            seen_logins.add((up_guid, up_asn))
        store.add_download(DownloadRecord(
            guid=down_guid, url="u", cid="c", cp_code=1, size=nbytes,
            started_at=1.0, ended_at=2.0, edge_bytes=0, peer_bytes=nbytes,
            p2p_enabled=True, outcome="completed",
            ip=ip_for(down_guid, down_asn),
            per_uploader_bytes={up_guid: nbytes}))
    for guid, asn in extra_logins:
        store.add_login(LoginRecord(guid, ip_for(guid, asn), 0.0, "v", True))
    return store, geodb


class TestMatrix:
    def test_inter_as_flow_recorded(self):
        store, geodb = build_env([("u1", 10, "d1", 20, 1000)])
        matrix = build_traffic_matrix(store, geodb)
        assert matrix.inter_as[(10, 20)] == 1000
        assert matrix.intra_as_bytes == 0

    def test_intra_as_flow_counted_separately(self):
        store, geodb = build_env([("u1", 10, "d1", 10, 500)])
        matrix = build_traffic_matrix(store, geodb)
        assert matrix.inter_as == {}
        assert matrix.intra_as_bytes == 500
        assert matrix.intra_as_fraction == 1.0

    def test_uploader_located_via_login_at_time(self):
        """An uploader that moved gets attributed to its AS at upload time."""
        store = LogStore()
        geodb = GeoDatabase()
        geodb.register("ip-a", geo(10))
        geodb.register("ip-b", geo(30))
        geodb.register("ip-d", geo(20))
        store.add_login(LoginRecord("u1", "ip-a", 0.0, "v", True))
        store.add_login(LoginRecord("u1", "ip-b", 100.0, "v", True))
        store.add_download(DownloadRecord(
            guid="d1", url="u", cid="c", cp_code=1, size=10,
            started_at=10.0, ended_at=50.0, edge_bytes=0, peer_bytes=10,
            p2p_enabled=True, outcome="completed", ip="ip-d",
            per_uploader_bytes={"u1": 10}))
        matrix = build_traffic_matrix(store, geodb)
        assert matrix.inter_as == {(10, 20): 10}

    def test_unresolved_uploader_counted(self):
        store, geodb = build_env([])
        geodb.register("ip-d", geo(20))
        store.add_download(DownloadRecord(
            guid="d1", url="u", cid="c", cp_code=1, size=10,
            started_at=1.0, ended_at=2.0, edge_bytes=0, peer_bytes=10,
            p2p_enabled=True, outcome="completed", ip="ip-d",
            per_uploader_bytes={"ghost": 10}))
        matrix = build_traffic_matrix(store, geodb)
        assert matrix.unresolved_bytes == 10
        assert matrix.inter_as == {}

    def test_per_as_totals_include_silent_ases(self):
        store, geodb = build_env(
            [("u1", 10, "d1", 20, 100)],
            extra_logins=[("quiet", 99)])
        matrix = build_traffic_matrix(store, geodb)
        ups = matrix.per_as_uploads()
        assert ups[99] == 0
        assert ups[10] == 100
        assert matrix.downloaded_by(20) == 100
        assert matrix.uploaded_by(10) == 100


class TestFigures:
    def make_skewed(self):
        flows = [("whale", 1, f"d{i}", 2 + i, 10_000) for i in range(5)]
        flows += [(f"small{i}", 100 + i, "dx", 50, 10) for i in range(10)]
        return build_env(flows)

    def test_fig9a_cdf_over_all_ases(self):
        store, geodb = self.make_skewed()
        matrix = build_traffic_matrix(store, geodb)
        points = figure9a_upload_cdf(matrix)
        assert points[-1][1] == 1.0
        assert len(points) == len(matrix.observed_ases)

    def test_fig9b_cumulative_reaches_one(self):
        store, geodb = self.make_skewed()
        matrix = build_traffic_matrix(store, geodb)
        points = figure9b_cumulative_contribution(matrix)
        assert points[-1][1] == pytest.approx(1.0)

    def test_heavy_uploaders_identified(self):
        store, geodb = self.make_skewed()
        matrix = build_traffic_matrix(store, geodb)
        heavy = heavy_uploader_ases(matrix, byte_share=0.9)
        assert 1 in heavy  # the whale
        assert len(heavy) < len(matrix.observed_ases) / 2

    def test_fig9c_split_covers_all_ases(self):
        store, geodb = self.make_skewed()
        matrix = build_traffic_matrix(store, geodb)
        cdfs = figure9c_ips_per_as(matrix)
        total = len(cdfs["light"]) + len(cdfs["heavy"])
        assert total == len(matrix.observed_ases)

    def test_fig10_scatter_rows(self):
        store, geodb = build_env([
            ("u1", 10, "d1", 20, 100), ("u2", 20, "d2", 10, 90)])
        matrix = build_traffic_matrix(store, geodb)
        rows = figure10_balance_scatter(matrix)
        by_asn = {r[0]: r for r in rows}
        assert by_asn[10][1] == 100.0  # uploaded
        assert by_asn[10][2] == 90.0   # downloaded

    def test_fig11_pairwise_balance(self):
        import networkx as nx
        from repro.net.topology import ASTopology, AutonomousSystem

        store, geodb = build_env([
            ("u1", 10, "d1", 20, 100), ("u2", 20, "d2", 10, 80)])
        matrix = build_traffic_matrix(store, geodb)
        graph = nx.Graph()
        graph.add_edge(10, 20)
        ases = [
            AutonomousSystem(10, "a", "DE", "Europe", "eu", "eyeball", 1.0),
            AutonomousSystem(20, "b", "DE", "Europe", "eu", "eyeball", 1.0),
        ]
        topology = ASTopology(ases, graph)
        pairs = figure11_pair_balance(matrix, topology)
        assert pairs == [(10, 20, 100.0, 80.0)]

    def test_fig11_skips_unconnected_pairs(self):
        import networkx as nx
        from repro.net.topology import ASTopology, AutonomousSystem

        store, geodb = build_env([
            ("u1", 10, "d1", 20, 100), ("u2", 20, "d2", 10, 80)])
        matrix = build_traffic_matrix(store, geodb)
        graph = nx.Graph()
        graph.add_node(10)
        graph.add_node(20)
        ases = [
            AutonomousSystem(10, "a", "DE", "Europe", "eu", "eyeball", 1.0),
            AutonomousSystem(20, "b", "DE", "Europe", "eu", "eyeball", 1.0),
        ]
        topology = ASTopology(ases, graph)
        assert figure11_pair_balance(matrix, topology) == []
        assert len(figure11_pair_balance(matrix, topology,
                                         directly_connected_only=False)) == 1
