"""Tests for the Figure 3 analyses."""

from __future__ import annotations

import pytest

from repro.analysis.logstore import LogStore
from repro.analysis.records import DownloadRecord
from repro.analysis.workload_analysis import (
    figure3a_size_cdfs, figure3b_popularity, figure3c_bytes_over_time,
    fraction_of_requests_above, power_law_exponent,
)

MB = 1024 ** 2
GB = 1024 ** 3


def dl(cid="c", size=GB, p2p=True, t0=0.0, t1=3600.0, total=None):
    total = size if total is None else total
    return DownloadRecord(
        guid="g", url=cid, cid=cid, cp_code=1, size=size, started_at=t0,
        ended_at=t1, edge_bytes=total, peer_bytes=0, p2p_enabled=p2p,
        outcome="completed")


class TestFigure3a:
    def test_classes_split(self):
        store = LogStore()
        store.add_download(dl(size=GB, p2p=True))
        store.add_download(dl(size=10 * MB, p2p=False))
        cdfs = figure3a_size_cdfs(store)
        assert len(cdfs["peer_assisted"]) == 1
        assert len(cdfs["infrastructure"]) == 1
        assert len(cdfs["all"]) == 2

    def test_fraction_above_threshold(self):
        store = LogStore()
        store.add_download(dl(size=GB, p2p=True))
        store.add_download(dl(size=100 * MB, p2p=True))
        assert fraction_of_requests_above(store, 500 * MB) == 0.5

    def test_fraction_above_empty(self):
        assert fraction_of_requests_above(LogStore(), 1) == 0.0


class TestFigure3b:
    def test_rank_ordering(self):
        store = LogStore()
        for _ in range(5):
            store.add_download(dl(cid="popular"))
        store.add_download(dl(cid="rare"))
        series = figure3b_popularity(store)
        assert series == [(1, 5), (2, 1)]

    def test_power_law_slope_negative_for_zipf(self):
        store = LogStore()
        for rank in range(1, 30):
            for _ in range(max(1, 300 // rank)):
                store.add_download(dl(cid=f"obj{rank}"))
        slope = power_law_exponent(figure3b_popularity(store))
        assert slope < -0.5

    def test_power_law_needs_points(self):
        with pytest.raises(ValueError):
            power_law_exponent([(1, 5)])


class TestFigure3c:
    def test_bytes_attributed_uniformly(self):
        store = LogStore()
        # 7200 bytes over 2 hours -> 3600 per hourly bucket.
        store.add_download(dl(size=7200, total=7200, t0=0.0, t1=7200.0))
        series = figure3c_bytes_over_time(store)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(3600.0)
        assert series[1][1] == pytest.approx(3600.0)

    def test_sub_bucket_download(self):
        store = LogStore()
        store.add_download(dl(size=100, total=100, t0=10.0, t1=20.0))
        series = figure3c_bytes_over_time(store)
        assert series == [(0.0, pytest.approx(100.0))]

    def test_invalid_bucket_rejected(self):
        with pytest.raises(ValueError):
            figure3c_bytes_over_time(LogStore(), bucket_seconds=0.0)

    def test_total_bytes_conserved(self):
        store = LogStore()
        store.add_download(dl(size=5000, total=5000, t0=100.0, t1=9000.0))
        store.add_download(dl(size=300, total=300, t0=50.0, t1=60.0))
        series = figure3c_bytes_over_time(store)
        assert sum(v for _t, v in series) == pytest.approx(5300.0)
