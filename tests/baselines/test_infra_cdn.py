"""Tests for the pure-infrastructure baseline."""

from __future__ import annotations

import pytest

from repro.baselines.infra_cdn import infrastructure_cost, make_infrastructure_cdn
from repro.core import ContentObject, ContentProvider
from repro.core.peer import CacheEntry


class TestFactory:
    def test_p2p_disabled(self):
        system = make_infrastructure_cdn(seed=3)
        assert not system.config.p2p_globally_enabled

    def test_kwargs_forwarded(self):
        system = make_infrastructure_cdn(seed=3)
        other = make_infrastructure_cdn(seed=3)
        assert system.create_peer().guid == other.create_peer().guid


class TestDelivery:
    def test_all_bytes_from_edge_even_with_seeders(self):
        system = make_infrastructure_cdn(seed=5)
        provider = ContentProvider(cp_code=1, name="P")
        obj = ContentObject("f.bin", 200 * 1024 * 1024, provider,
                            p2p_enabled=True)
        system.publish(obj)
        country = system.world.by_code["DE"]
        for _ in range(5):
            seeder = system.create_peer(country=country, uploads_enabled=True)
            seeder.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
            seeder.boot()
        downloader = system.create_peer(country=country)
        downloader.boot()
        session = downloader.start_download(obj)
        system.run(until=12 * 3600)
        assert session.state == "completed"
        assert session.peer_bytes == 0


class TestCostReport:
    def test_cost_aggregation(self):
        from repro.analysis.logstore import LogStore
        from repro.analysis.records import DownloadRecord

        store = LogStore()
        store.add_download(DownloadRecord(
            guid="g", url="u", cid="c", cp_code=1, size=100, started_at=0,
            ended_at=1, edge_bytes=70, peer_bytes=30, p2p_enabled=True,
            outcome="completed"))
        store.add_download(DownloadRecord(
            guid="g2", url="u", cid="c", cp_code=1, size=100, started_at=0,
            ended_at=1, edge_bytes=50, peer_bytes=0, p2p_enabled=False,
            outcome="aborted"))
        report = infrastructure_cost(store)
        assert report.edge_bytes == 120
        assert report.peer_bytes == 30
        assert report.edge_share == pytest.approx(0.8)
        assert report.completion_rate == 0.5

    def test_empty_report(self):
        from repro.analysis.logstore import LogStore
        report = infrastructure_cost(LogStore())
        assert report.edge_share == 0.0
        assert report.completion_rate == 0.0
