"""Tests for the Antfarm-style managed-swarm baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines.managed_swarm import ManagedSwarmConfig, ManagedSwarmSystem
from repro.baselines.p2p_cdn import P2PPeer

MBPS = 1e6 / 8


def build_fleet(policy, seed=4, budget_mbps=20.0):
    """Two swarms with very different self-sufficiency: a big, healthy one
    and a young, seeder-poor one."""
    system = ManagedSwarmSystem(
        ManagedSwarmConfig(seed_budget_bps=budget_mbps * MBPS, policy=policy),
        seed=seed)
    rng = random.Random(seed)
    healthy = system.add_torrent("healthy", 60e6)
    starving = system.add_torrent("starving", 60e6)
    for i in range(12):
        peer = P2PPeer(f"h{i}", up_bps=rng.uniform(1, 3) * MBPS,
                       down_bps=10 * MBPS)
        system.start_download(healthy, peer)
    for i in range(4):
        peer = P2PPeer(f"s{i}", up_bps=0.2 * MBPS, down_bps=10 * MBPS,
                       free_rider=i % 2 == 0)
        system.start_download(starving, peer)
    return system, healthy, starving


class TestConfig:
    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ManagedSwarmConfig(seed_budget_bps=0.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ManagedSwarmConfig(policy="chaotic")


class TestCoordinator:
    def test_allocation_sums_to_budget(self):
        system, healthy, starving = build_fleet("managed")
        system.run(60.0)
        total = sum(system.allocation.values())
        assert total == pytest.approx(system.config.seed_budget_bps, rel=0.01)

    def test_managed_favours_the_starving_swarm(self):
        system, healthy, starving = build_fleet("managed")
        system.run(60.0)
        assert system.allocation["starving"] > system.allocation["healthy"]

    def test_equal_split_is_equal(self):
        system, healthy, starving = build_fleet("equal_split")
        system.run(60.0)
        assert system.allocation["healthy"] == pytest.approx(
            system.allocation["starving"])

    def test_idle_system_allocates_nothing(self):
        system = ManagedSwarmSystem(seed=1)
        system.add_torrent("empty", 1e6)
        system.run(30.0)
        assert sum(system.allocation.values()) == 0.0


class TestOutcomes:
    def test_both_policies_complete_eventually(self):
        for policy in ("managed", "equal_split"):
            system, _h, _s = build_fleet(policy)
            system.run(4 * 3600.0)
            stats = system.aggregate_stats()
            assert stats["completed"] == 1.0, policy

    def test_managed_beats_equal_split_on_mean_time(self):
        managed, *_ = build_fleet("managed", budget_mbps=10.0)
        managed.run(4 * 3600.0)
        control, *_ = build_fleet("equal_split", budget_mbps=10.0)
        control.run(4 * 3600.0)
        m = managed.aggregate_stats()
        c = control.aggregate_stats()
        assert m["completed"] >= c["completed"]
        if m["completed"] == c["completed"] == 1.0:
            assert m["mean_time"] <= c["mean_time"] * 1.05
