"""Tests for the BitTorrent-like pure-P2P baseline."""

from __future__ import annotations

import pytest

from repro.baselines.p2p_cdn import P2PConfig, P2PPeer, PureP2PSwarm

MBPS = 1e6 / 8


def make_leechers(swarm, torrent, n, *, free_riders=0, seed_names="l"):
    downloads = []
    for i in range(n):
        peer = P2PPeer(f"{seed_names}{i}", up_bps=1 * MBPS, down_bps=10 * MBPS,
                       free_rider=i < free_riders)
        downloads.append(swarm.start_download(torrent, peer))
    return downloads


class TestBasics:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            P2PConfig(recheck_interval=0.0)
        with pytest.raises(ValueError):
            P2PConfig(upload_slots=0)

    def test_invalid_torrent_size_rejected(self):
        with pytest.raises(ValueError):
            PureP2PSwarm(seed=1).add_torrent("t", 0.0, [])

    def test_single_leecher_downloads_from_seeder(self):
        swarm = PureP2PSwarm(seed=1)
        seeder = P2PPeer("seed", up_bps=5 * MBPS, down_bps=10 * MBPS)
        torrent = swarm.add_torrent("t", 50e6, [seeder])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(4 * 3600)
        assert download.complete
        assert download.end_time is not None

    def test_download_rate_bounded_by_seeder_uplink(self):
        swarm = PureP2PSwarm(seed=1)
        seeder = P2PPeer("seed", up_bps=1 * MBPS, down_bps=10 * MBPS)
        torrent = swarm.add_torrent("t", 36e6, [seeder])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(3600)
        took = download.end_time - download.start_time
        assert took >= 36e6 / (1 * MBPS) * 0.9

    def test_completed_leecher_becomes_seeder(self):
        swarm = PureP2PSwarm(P2PConfig(seed_linger_mean=1e9), seed=1)
        seeder = P2PPeer("seed", up_bps=8 * MBPS, down_bps=10 * MBPS)
        torrent = swarm.add_torrent("t", 10e6, [seeder])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(3600)
        assert download.peer in torrent.seeders


class TestIncentives:
    def test_free_riders_slower_than_contributors(self):
        swarm = PureP2PSwarm(seed=3)
        seeders = [P2PPeer(f"s{i}", up_bps=2 * MBPS, down_bps=10 * MBPS)
                   for i in range(2)]
        torrent = swarm.add_torrent("t", 100e6, seeders)
        downloads = make_leechers(swarm, torrent, 12, free_riders=4)
        swarm.run(8 * 3600)
        def mean_time(group):
            times = [d.end_time - d.start_time for d in group
                     if d.end_time is not None]
            # Unfinished downloads count as the full window (censored).
            times += [8 * 3600.0] * sum(1 for d in group if d.end_time is None)
            return sum(times) / len(times)
        free = [d for d in downloads if d.peer.free_rider]
        contrib = [d for d in downloads if not d.peer.free_rider]
        assert mean_time(contrib) < mean_time(free)

    def test_reciprocation_credit_accumulates(self):
        swarm = PureP2PSwarm(seed=3)
        seeder = P2PPeer("s", up_bps=5 * MBPS, down_bps=10 * MBPS)
        torrent = swarm.add_torrent("t", 80e6, [seeder])
        downloads = make_leechers(swarm, torrent, 3)
        swarm.run(1800)
        assert any(d.credit for d in downloads)


class TestChurnAndFailure:
    def test_no_seeders_means_no_progress(self):
        swarm = PureP2PSwarm(seed=2)
        torrent = swarm.add_torrent("t", 50e6, [])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(3600)
        assert download.received == 0.0

    def test_stalled_download_fails(self):
        swarm = PureP2PSwarm(P2PConfig(stall_timeout=600.0), seed=2)
        torrent = swarm.add_torrent("t", 50e6, [])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(3600)
        assert download.failed

    def test_offline_seeder_stops_serving(self):
        swarm = PureP2PSwarm(P2PConfig(stall_timeout=1e9), seed=2)
        seeder = P2PPeer("s", up_bps=5 * MBPS, down_bps=10 * MBPS)
        torrent = swarm.add_torrent("t", 1e9, [seeder])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(60)
        seeder.online = False
        before = download.received
        swarm.run(600)
        assert download.received == before

    def test_seeders_churn_after_linger(self):
        swarm = PureP2PSwarm(P2PConfig(seed_linger_mean=60.0), seed=4)
        seeder = P2PPeer("s", up_bps=20 * MBPS, down_bps=20 * MBPS)
        torrent = swarm.add_torrent("t", 5e6, [seeder])
        (download,) = make_leechers(swarm, torrent, 1)
        swarm.run(2 * 3600)
        assert download.complete
        # After lingering, the finished peer left the seeder set.
        assert download.peer not in torrent.seeders

    def test_completion_stats(self):
        swarm = PureP2PSwarm(seed=5)
        seeder = P2PPeer("s", up_bps=10 * MBPS, down_bps=10 * MBPS)
        torrent = swarm.add_torrent("t", 10e6, [seeder])
        make_leechers(swarm, torrent, 2)
        swarm.run(4 * 3600)
        stats = swarm.completion_stats(torrent)
        assert stats["completed"] == 1.0
        assert stats["mean_time"] > 0

    def test_completion_stats_empty_torrent(self):
        swarm = PureP2PSwarm(seed=5)
        torrent = swarm.add_torrent("t", 10e6, [])
        stats = swarm.completion_stats(torrent)
        assert stats == {"completed": 0.0, "failed": 0.0, "mean_time": 0.0}
