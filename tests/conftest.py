"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem, SystemConfig
from repro.core.peer import CacheEntry

try:  # hypothesis is a dev-only dependency; fixtures must import without it
    from hypothesis import settings as _hyp_settings

    # ``dev`` keeps the library defaults (random exploration, local DB);
    # ``ci`` is fully reproducible: derandomized example generation and no
    # wall-clock deadline, so a loaded CI worker can't flake a property.
    _hyp_settings.register_profile("dev")
    _hyp_settings.register_profile("ci", derandomize=True, deadline=None)
    _hyp_settings.load_profile("ci" if os.environ.get("CI") else "dev")
except ImportError:  # pragma: no cover
    pass


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the on-disk result cache at a throwaway directory.

    CLI commands exercised by tests default to ``.repro-cache`` in the
    working tree; redirecting via ``REPRO_CACHE_DIR`` keeps test runs from
    polluting the checkout (and from reading a developer's warm cache,
    which would mask cold-path bugs).
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests."""
    return random.Random(1234)


@pytest.fixture
def system() -> NetSessionSystem:
    """A small, fully wired NetSession deployment."""
    return NetSessionSystem(seed=7)


@pytest.fixture
def provider() -> ContentProvider:
    """A generic upload-friendly content provider."""
    return ContentProvider(cp_code=9001, name="TestCo", upload_default_rate=1.0)


@pytest.fixture
def small_object(provider) -> ContentObject:
    """A 40 MB infrastructure-only object."""
    return ContentObject("small.bin", 40 * 1024 * 1024, provider)


@pytest.fixture
def big_object(provider) -> ContentObject:
    """A 600 MB p2p-enabled object."""
    return ContentObject("big.bin", 600 * 1024 * 1024, provider, p2p_enabled=True)


def make_swarm_scene(system, obj, *, seeders=12, country_code="DE"):
    """Publish ``obj``, boot ``seeders`` peers that already cache it, and
    return (seeder list, a fresh downloader) — all in one country so the
    locality-aware directory finds them."""
    system.publish(obj)
    country = system.world.by_code[country_code]
    peers = []
    for _ in range(seeders):
        peer = system.create_peer(country=country, uploads_enabled=True)
        peer.cache[obj.cid] = CacheEntry(cid=obj.cid, completed_at=0.0)
        peer.boot()
        peers.append(peer)
    downloader = system.create_peer(country=country, uploads_enabled=True)
    downloader.boot()
    return peers, downloader


@pytest.fixture
def swarm_scene(system, big_object):
    """(system, object, seeders, downloader) ready for a peer-assisted download."""
    seeders, downloader = make_swarm_scene(system, big_object)
    return system, big_object, seeders, downloader
