"""Tests for reliable accounting and attack filtering."""

from __future__ import annotations

import random

import pytest

from repro.core.accounting import AccountingService
from repro.core.content import ContentObject, ContentProvider
from repro.core.edge import EdgeNetwork
from repro.core.messages import UsageReport


@pytest.fixture
def setup():
    edge = EdgeNetwork(["eu"], random.Random(1))
    provider = ContentProvider(cp_code=7, name="P")
    obj = ContentObject("f.bin", 100_000_000, provider, p2p_enabled=True)
    edge.publish(obj)
    service = AccountingService(edge)
    return edge, obj, service


def report(obj, guid="g1", edge_bytes=60_000_000, peer_bytes=40_000_000,
           per_uploader=None, outcome="completed"):
    return UsageReport(
        guid=guid, cid=obj.cid, cp_code=obj.provider.cp_code,
        started_at=0.0, ended_at=100.0,
        claimed_edge_bytes=edge_bytes, claimed_peer_bytes=peer_bytes,
        per_uploader_bytes=per_uploader if per_uploader is not None
        else {"u1": peer_bytes},
        outcome=outcome,
    )


class TestValidation:
    def test_honest_report_accepted(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        assert service.ingest(report(obj))
        assert service.rejection_rate() == 0.0

    def test_inflated_edge_bytes_rejected(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 10_000_000)
        assert not service.ingest(report(obj, edge_bytes=60_000_000))
        assert service.rejected[0][1] == "edge-mismatch"

    def test_underclaimed_edge_bytes_rejected(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        assert not service.ingest(report(obj, edge_bytes=1_000_000))

    def test_small_skew_tolerated(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        assert service.ingest(report(obj, edge_bytes=int(60_000_000 * 1.01)))

    def test_negative_bytes_rejected(self, setup):
        edge, obj, service = setup
        assert not service.ingest(report(obj, edge_bytes=-5))
        assert service.rejected[0][1] == "negative"

    def test_oversized_claim_rejected(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        assert not service.ingest(
            report(obj, peer_bytes=200_000_000,
                   per_uploader={"u1": 200_000_000}))

    def test_per_uploader_exceeding_peer_total_rejected(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        assert not service.ingest(
            report(obj, peer_bytes=1_000, per_uploader={"u1": 40_000_000}))

    def test_unknown_object_rejected(self, setup):
        edge, obj, service = setup
        other = ContentObject("ghost.bin", 10, obj.provider)
        assert not service.ingest(report(other, edge_bytes=0, peer_bytes=0,
                                         per_uploader={}))


class TestBilling:
    def test_billing_accumulates_per_provider(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        edge.servers[0].record_served("g2", obj.cid, 60_000_000)
        service.ingest(report(obj, guid="g1"))
        service.ingest(report(obj, guid="g2"))
        summary = service.provider_report(obj.provider.cp_code)
        assert summary.completed_downloads == 2
        assert summary.edge_bytes == 120_000_000
        assert summary.peer_bytes == 80_000_000
        assert summary.offload_fraction == pytest.approx(80 / 200)

    def test_outcome_classification(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        service.ingest(report(obj, outcome="failed"))
        summary = service.provider_report(obj.provider.cp_code)
        assert summary.failed_downloads == 1
        assert summary.completed_downloads == 0

    def test_upload_credit_tracked(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        service.ingest(report(obj, per_uploader={"u1": 30_000_000,
                                                 "u2": 10_000_000}))
        assert service.upload_credit["u1"] == 30_000_000
        assert service.upload_credit["u2"] == 10_000_000

    def test_rejected_reports_not_billed(self, setup):
        edge, obj, service = setup
        service.ingest(report(obj, edge_bytes=60_000_000))  # no edge record
        summary = service.provider_report(obj.provider.cp_code)
        assert summary.total_bytes == 0

    def test_empty_provider_report(self, setup):
        _edge, _obj, service = setup
        summary = service.provider_report(999)
        assert summary.total_bytes == 0
        assert summary.offload_fraction == 0.0

    def test_rejection_rate(self, setup):
        edge, obj, service = setup
        edge.servers[0].record_served("g1", obj.cid, 60_000_000)
        service.ingest(report(obj))                       # accepted
        service.ingest(report(obj, guid="g9"))            # rejected (no edge)
        assert service.rejection_rate() == pytest.approx(0.5)
