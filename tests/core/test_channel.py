"""Tests for the control-channel reliability layer (§3.8).

Covers the lossy-RPC transport (latency, loss, timeouts), capped-backoff
retries, CN failover, the circuit breaker with recovery probes, and the
refresh-failover regression (a peer whose CN died must not let its
directory registrations silently expire).
"""

from __future__ import annotations

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem, SystemConfig
from repro.core.config import ControlChannelConfig
from repro.core.control.channel import DEGRADED, HEALTHY
from repro.core.peer import CacheEntry

HOUR = 3600.0
MB = 1024 * 1024


def build_system(config=None, seed=7):
    return NetSessionSystem(config=config, seed=seed)


def seeded_peer(system, cid="chan.bin", size=100 * MB):
    """One booted DE peer that caches (and has registered) one object."""
    provider = ContentProvider(cp_code=1, name="P")
    obj = ContentObject(cid, size, provider, p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    peer = system.create_peer(country=country, uploads_enabled=True)
    peer.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
    peer.boot()
    return peer, obj


class TestChannelConfig:
    def test_defaults_are_ideal(self):
        cfg = ControlChannelConfig()
        assert cfg.latency == 0.0
        assert cfg.loss_prob == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlChannelConfig(latency=-1.0)
        with pytest.raises(ValueError):
            ControlChannelConfig(loss_prob=1.0)
        with pytest.raises(ValueError):
            ControlChannelConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ControlChannelConfig(probe_interval=0.0)

    def test_with_channel_helper(self):
        cfg = SystemConfig().with_channel(latency=0.5, loss_prob=0.1)
        assert cfg.channel.latency == 0.5
        assert cfg.channel.loss_prob == 0.1
        # the original default instance is untouched (frozen dataclasses)
        assert SystemConfig().channel.loss_prob == 0.0


class TestIdealChannel:
    """Default config: synchronous, event-free, byte-identical to PR 2."""

    def test_login_is_synchronous(self):
        system = build_system()
        peer, _ = seeded_peer(system)
        # cn assigned before boot() returned; no sim time has passed
        assert peer.cn is not None and peer.cn.alive
        assert peer.guid in peer.cn.connected
        assert system.sim.now == 0.0

    def test_ideal_requests_schedule_no_wire_attempts(self):
        system = build_system()
        peer, obj = seeded_peer(system)
        peer.channel.refresh_registrations()
        stats = system.channel_stats
        assert stats.requests >= 2  # login + refresh at least
        assert stats.attempts == 0  # fast path: nothing on the "wire"
        assert stats.retries == 0
        assert stats.timeouts == 0
        assert peer.channel.state == HEALTHY


class TestLatentChannel:
    def test_login_completes_after_round_trip(self):
        config = SystemConfig().with_channel(latency=1.0)
        system = build_system(config)
        peer, _ = seeded_peer(system)
        # the login is in flight: one-way latency each direction
        assert peer.cn is None
        system.run(until=3.0)
        assert peer.cn is not None and peer.cn.alive
        assert system.channel_stats.attempts >= 1

    def test_latency_past_timeout_behaves_as_loss(self):
        config = SystemConfig().with_channel(latency=30.0, request_timeout=15.0)
        system = build_system(config)
        peer, _ = seeded_peer(system)
        system.run(until=40.0)
        # every response lands after the timeout and is dropped as stale
        assert system.channel_stats.timeouts >= 1
        assert peer.cn is None


class TestLossyChannel:
    def test_retries_eventually_deliver(self):
        config = SystemConfig().with_channel(latency=0.2, loss_prob=0.5)
        system = build_system(config)
        peer, _ = seeded_peer(system)
        system.run(until=20 * 60.0)
        stats = system.channel_stats
        assert peer.cn is not None and peer.cn.alive
        assert stats.lost_messages >= 1

    def test_loss_is_deterministic_per_seed(self):
        def counters():
            config = SystemConfig().with_channel(latency=0.2, loss_prob=0.4)
            system = build_system(config, seed=11)
            peer, _ = seeded_peer(system)
            peer.channel.refresh_registrations()
            system.run(until=10 * 60.0)
            return system.channel_stats.as_dict()

        assert counters() == counters()


class TestBreakerAndProbes:
    def test_blackout_trips_breaker_then_probe_recovers(self):
        system = build_system()
        peer, obj = seeded_peer(system)
        cfg = system.config.channel
        system.run(until=10.0)
        system.control.blackout()
        # the next RPC finds nothing reachable, retries, and trips
        peer.channel.refresh_registrations()
        system.run(until=10.0 + 120.0)
        assert peer.channel.state == DEGRADED
        assert peer.channel.times_degraded == 1
        assert peer.cn is None
        assert system.channel_stats.breaker_trips == 1
        # probes run and fail while the plane is down
        failures_mid = system.channel_stats.probe_failures
        assert failures_mid >= 1

        restore_t = system.sim.now
        system.control.restore()  # self recovery: no scheduled reconnects
        system.run(until=restore_t + cfg.probe_interval + 5.0)
        assert peer.channel.state == HEALTHY
        assert peer.cn is not None and peer.cn.alive
        assert peer.guid in peer.cn.connected
        assert system.channel_stats.recoveries == 1
        assert peer.channel.last_recovered_at is not None
        assert peer.channel.last_recovered_at - restore_t <= cfg.probe_interval
        # the degraded period is accounted
        assert system.channel_stats.degraded_seconds > 0
        assert system.channel_stats.mean_time_to_recover > 0
        # recovery re-registered the cached object with the directory
        assert system.control.total_registrations() >= 1
        assert peer.cache[obj.cid].registered

    def test_degraded_channel_drops_new_requests(self):
        system = build_system()
        peer, _ = seeded_peer(system)
        system.run(until=10.0)
        system.control.blackout()
        peer.channel.refresh_registrations()
        system.run(until=200.0)
        assert peer.channel.state == DEGRADED
        before = system.channel_stats.dropped_degraded
        peer.channel.refresh_registrations()
        assert system.channel_stats.dropped_degraded == before + 1

    def test_offline_closes_degraded_period_without_recovery(self):
        system = build_system()
        peer, _ = seeded_peer(system)
        system.run(until=10.0)
        system.control.blackout()
        peer.channel.refresh_registrations()
        system.run(until=200.0)
        assert peer.channel.state == DEGRADED
        peer.go_offline()
        assert peer.channel.state == HEALTHY
        assert peer.channel.degraded_since is None
        assert system.channel_stats.degraded_seconds > 0
        assert system.channel_stats.recoveries == 0


class TestFailover:
    def test_request_fails_over_when_cn_dies(self):
        system = build_system()
        peer, _ = seeded_peer(system)
        system.run(until=10.0)
        dead = peer.cn
        system.control.fail_cn(dead)
        # reconnects are scheduled by fail_cn, but the channel does not
        # wait for them: the very next RPC re-homes on a live CN.
        peer.channel.refresh_registrations()
        assert peer.cn is not None
        assert peer.cn is not dead
        assert peer.cn.alive
        assert peer.guid in peer.cn.connected
        assert system.channel_stats.failovers >= 1

    def test_recovered_cn_with_empty_table_is_not_trusted(self):
        # A CN that crashed and restarted looks alive again, but it no
        # longer holds our control connection: membership in its table is
        # the ground truth, and the next RPC re-logs-in.
        system = build_system()
        peer, _ = seeded_peer(system)
        system.run(until=10.0)
        cn = peer.cn
        cn.fail()
        cn.recover()
        assert cn.alive and peer.guid not in cn.connected
        peer.channel.refresh_registrations()
        assert peer.cn is not None and peer.cn.alive
        assert peer.guid in peer.cn.connected


class TestRefreshFailoverRegression:
    """The periodic refresh must survive a dead CN (it used to no-op)."""

    def test_registrations_survive_cn_death_across_refresh(self):
        ttl = 1800.0
        config = SystemConfig().with_control_plane(registration_ttl=ttl)
        system = build_system(config)
        peer, obj = seeded_peer(system)
        system.run(until=10.0)
        assert system.control.total_registrations() >= 1
        system.control.fail_cn(peer.cn)
        # run far past the TTL: the periodic refresh (ttl/3) must fail
        # over and keep the registration alive in the directory
        system.run(until=3 * ttl)
        assert peer.cn is not None and peer.cn.alive
        assert system.control.total_registrations() >= 1
        assert peer.online


class TestUsageReportGiveup:
    def test_reports_defer_to_accounting_when_plane_is_down(self):
        system = build_system()
        provider = ContentProvider(cp_code=1, name="P")
        obj = ContentObject("dl.bin", 40 * MB, provider, p2p_enabled=True)
        system.publish(obj)
        country = system.world.by_code["DE"]
        peer = system.create_peer(country=country)
        peer.boot()
        session = peer.start_download(obj)
        system.run(until=5.0)
        system.control.blackout()
        system.run(until=2 * HOUR)
        # the download finished during the blackout; the usage report gave
        # up on the wire but was ingested, so billing still sees it
        assert session.state == "completed"
        assert any(r.outcome == "completed" for r in system.accounting.accepted)
        assert system.channel_stats.giveups >= 1
