"""Tests for configuration validation and copy helpers."""

from __future__ import annotations

import pytest

from repro.core.config import ClientConfig, ControlPlaneConfig, SystemConfig


class TestClientConfig:
    def test_defaults_valid(self):
        ClientConfig()

    def test_negative_upload_connections_rejected(self):
        with pytest.raises(ValueError):
            ClientConfig(max_upload_connections=-1)

    def test_zero_upload_connections_allowed(self):
        # A peer can be configured to never upload.
        assert ClientConfig(max_upload_connections=0).max_upload_connections == 0

    def test_upload_rate_fraction_bounds(self):
        with pytest.raises(ValueError):
            ClientConfig(upload_rate_fraction=0.0)
        with pytest.raises(ValueError):
            ClientConfig(upload_rate_fraction=1.5)

    def test_uploads_per_object_positive(self):
        with pytest.raises(ValueError):
            ClientConfig(max_uploads_per_object=0)

    def test_cache_retention_positive(self):
        with pytest.raises(ValueError):
            ClientConfig(cache_retention=0.0)


class TestControlPlaneConfig:
    def test_defaults_match_paper(self):
        cfg = ControlPlaneConfig()
        assert cfg.peers_per_query == 40  # "up to 40 peers are returned"

    def test_peers_per_query_positive(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(peers_per_query=0)

    def test_diversity_probability_bounds(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(diversity_probability=1.1)


class TestSystemConfig:
    def test_with_client_returns_modified_copy(self):
        cfg = SystemConfig()
        changed = cfg.with_client(max_upload_connections=99)
        assert changed.client.max_upload_connections == 99
        assert cfg.client.max_upload_connections != 99

    def test_with_control_plane_returns_modified_copy(self):
        cfg = SystemConfig()
        changed = cfg.with_control_plane(peers_per_query=5)
        assert changed.control_plane.peers_per_query == 5
        assert cfg.control_plane.peers_per_query == 40

    def test_p2p_enabled_by_default(self):
        assert SystemConfig().p2p_globally_enabled
