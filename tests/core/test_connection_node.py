"""Tests for the connection node (login, query, RE-ADD)."""

from __future__ import annotations

import pytest

from repro.core.peer import CacheEntry


@pytest.fixture
def online_seeder(system, big_object):
    system.publish(big_object)
    country = system.world.by_code["DE"]
    seeder = system.create_peer(country=country, uploads_enabled=True)
    seeder.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
    seeder.boot()
    return seeder


@pytest.fixture
def querier(system, big_object):
    country = system.world.by_code["DE"]
    peer = system.create_peer(country=country, uploads_enabled=True)
    peer.boot()
    return peer


class TestLogin:
    def test_login_writes_record(self, system, querier):
        records = [r for r in system.logstore.logins if r.guid == querier.guid]
        assert len(records) == 1
        assert records[0].ip == querier.ip
        assert records[0].uploads_enabled

    def test_login_registers_shareable_content(self, system, online_seeder,
                                                big_object):
        assert any(
            r.guid == online_seeder.guid and r.cid == big_object.cid
            for r in system.logstore.registrations
        )

    def test_login_runs_stun_probe(self, system, querier):
        assert system.control.stun.probe_count >= 1

    def test_logout_unregisters(self, system, online_seeder):
        online_seeder.go_offline()
        assert system.control.total_registrations() == 0


class TestQuery:
    def test_query_returns_local_seeder(self, system, online_seeder, querier,
                                        big_object):
        token = system.edge.authorize(querier.guid, big_object)
        resp = querier.cn.query(querier, big_object.cid, token)
        assert any(c.guid == online_seeder.guid for c in resp.candidates)

    def test_invalid_token_returns_nothing(self, system, online_seeder,
                                           querier, big_object):
        token = system.edge.authorize("someone-else", big_object)
        resp = querier.cn.query(querier, big_object.cid, token)
        assert resp.candidates == ()

    def test_exclude_filters_candidates(self, system, online_seeder, querier,
                                        big_object):
        token = system.edge.authorize(querier.guid, big_object)
        resp = querier.cn.query(
            querier, big_object.cid, token,
            exclude=frozenset({online_seeder.guid}))
        assert all(c.guid != online_seeder.guid for c in resp.candidates)

    def test_query_rotates_selected_peer(self, system, online_seeder, querier,
                                         big_object):
        # Register a second seeder so rotation is observable.
        country = system.world.by_code["DE"]
        other = system.create_peer(country=country, uploads_enabled=True)
        other.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        other.boot()
        token = system.edge.authorize(querier.guid, big_object)
        cn = querier.cn
        dn = cn._dn_for(big_object.cid)
        order_before = [r.guid for r in dn.peers_for(big_object.cid)]
        cn.query(querier, big_object.cid, token)
        order_after = [r.guid for r in dn.peers_for(big_object.cid)]
        assert set(order_before) == set(order_after)

    def test_remote_search_widens_thin_directories(self, system, big_object,
                                                   querier):
        # Seeder in a different network region: local DN is empty.
        system.publish(big_object)
        far = system.world.by_code["JP"]
        seeder = system.create_peer(country=far, uploads_enabled=True)
        seeder.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        seeder.boot()
        assert seeder.network_region != querier.network_region
        token = system.edge.authorize(querier.guid, big_object)
        resp = querier.cn.query(querier, big_object.cid, token)
        assert any(c.guid == seeder.guid for c in resp.candidates)

    def test_dead_cn_refuses_queries(self, system, querier, big_object):
        system.publish(big_object)
        token = system.edge.authorize(querier.guid, big_object)
        cn = querier.cn
        cn.fail()
        with pytest.raises(ConnectionError):
            cn.query(querier, big_object.cid, token)


class TestReAdd:
    def test_re_add_repopulates_dn(self, system, online_seeder, big_object):
        cn = online_seeder.cn
        dn = cn._dn_for(big_object.cid)
        dn.fail()
        dn.recover()
        assert dn.copy_count(big_object.cid) == 0
        answered = cn.broadcast_re_add(system.sim.now)
        assert answered >= 1
        assert dn.copy_count(big_object.cid) == 1

    def test_re_add_skips_upload_disabled_peers(self, system, big_object):
        system.publish(big_object)
        country = system.world.by_code["DE"]
        peer = system.create_peer(country=country, uploads_enabled=False)
        peer.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        peer.boot()
        cn = peer.cn
        answered = cn.broadcast_re_add(system.sim.now)
        assert answered >= 1
        assert system.control.total_registrations() == 0


class TestFailure:
    def test_fail_returns_orphans_and_clears_state(self, system, querier):
        cn = querier.cn
        orphans = cn.fail()
        assert querier in orphans
        assert not cn.alive
        assert cn.connected == {}

    def test_login_to_dead_cn_raises(self, system, querier):
        cn = querier.cn
        cn.fail()
        with pytest.raises(ConnectionError):
            cn.login(querier, system.sim.now)
