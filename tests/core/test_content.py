"""Tests for the content model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.content import PIECE_SIZE, ContentObject, ContentProvider


@pytest.fixture
def gameco():
    return ContentProvider(cp_code=1, name="GameCo", upload_default_rate=0.5)


class TestProvider:
    def test_invalid_cp_code_rejected(self):
        with pytest.raises(ValueError):
            ContentProvider(cp_code=0, name="x")

    def test_invalid_upload_rate_rejected(self):
        with pytest.raises(ValueError):
            ContentProvider(cp_code=1, name="x", upload_default_rate=1.5)

    def test_region_mix_optional(self):
        p = ContentProvider(cp_code=1, name="x")
        assert p.region_mix == {}


class TestObject:
    def test_piece_count_exact_multiple(self, gameco):
        obj = ContentObject("a", 3 * PIECE_SIZE, gameco)
        assert obj.num_pieces == 3
        assert obj.last_piece_size == PIECE_SIZE

    def test_piece_count_with_remainder(self, gameco):
        obj = ContentObject("a", 3 * PIECE_SIZE + 100, gameco)
        assert obj.num_pieces == 4
        assert obj.last_piece_size == 100

    def test_single_small_piece(self, gameco):
        obj = ContentObject("a", 10, gameco)
        assert obj.num_pieces == 1
        assert obj.piece_size(0) == 10

    def test_piece_sizes_sum_to_object_size(self, gameco):
        obj = ContentObject("a", 5 * PIECE_SIZE + 12345, gameco)
        assert sum(obj.piece_size(i) for i in range(obj.num_pieces)) == obj.size

    @given(size=st.integers(min_value=1, max_value=20 * PIECE_SIZE))
    def test_piece_invariants_hold_for_any_size(self, size):
        provider = ContentProvider(cp_code=1, name="p")
        obj = ContentObject("a", size, provider)
        assert obj.num_pieces >= 1
        assert sum(obj.piece_size(i) for i in range(obj.num_pieces)) == size
        assert all(0 < obj.piece_size(i) <= PIECE_SIZE for i in range(obj.num_pieces))

    def test_piece_index_out_of_range(self, gameco):
        obj = ContentObject("a", PIECE_SIZE, gameco)
        with pytest.raises(IndexError):
            obj.piece_size(1)
        with pytest.raises(IndexError):
            obj.expected_hash(-1)

    def test_zero_size_rejected(self, gameco):
        with pytest.raises(ValueError):
            ContentObject("a", 0, gameco)

    def test_new_version_changes_cid_keeps_url(self, gameco):
        obj = ContentObject("a", 100, gameco, p2p_enabled=True)
        v2 = obj.new_version()
        assert v2.url == obj.url
        assert v2.cid != obj.cid
        assert v2.version == 2
        assert v2.p2p_enabled

    def test_hashes_stable_per_version(self, gameco):
        obj = ContentObject("a", 2 * PIECE_SIZE, gameco)
        assert obj.expected_hash(0) == obj.expected_hash(0)
        assert obj.expected_hash(0) != obj.expected_hash(1)

    def test_equality_by_cid(self, gameco):
        a = ContentObject("a", 100, gameco)
        b = ContentObject("a", 100, gameco)
        c = ContentObject("a", 100, gameco, version=2)
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2
