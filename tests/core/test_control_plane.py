"""Tests for control-plane assembly and §3.8 robustness."""

from __future__ import annotations

import pytest

from repro.core import NetSessionSystem, SystemConfig
from repro.core.peer import CacheEntry


class TestMapping:
    def test_peer_maps_to_local_region_cn(self, system):
        peer = system.create_peer()
        peer.boot()
        assert peer.cn.network_region == peer.network_region

    def test_falls_back_to_remote_cn_when_local_down(self, system):
        peer = system.create_peer()
        region = peer.network_region
        for cn in system.control.cns_by_region[region]:
            cn.alive = False
        peer.boot()
        assert peer.cn is not None
        assert peer.cn.network_region != region

    def test_no_cn_anywhere_returns_none(self, system):
        for cn in system.control.all_cns:
            cn.alive = False
        peer = system.create_peer()
        peer.boot()
        assert peer.cn is None
        assert peer.online  # still online, edge-only fallback


class TestCNFailure:
    def test_orphans_reconnect_elsewhere(self, system):
        peers = [system.create_peer() for _ in range(10)]
        for p in peers:
            p.boot()
        cn = peers[0].cn
        count = system.control.fail_cn(cn)
        assert count >= 1
        system.sim.run(until=system.sim.now + 60.0)
        for p in peers:
            if p.online:
                assert p.cn is not None
                assert p.cn.alive

    def test_connected_count_recovers_after_failure(self, system):
        peers = [system.create_peer() for _ in range(10)]
        for p in peers:
            p.boot()
        before = system.control.connected_peer_count()
        system.control.fail_cn(peers[0].cn)
        system.sim.run(until=system.sim.now + 120.0)
        assert system.control.connected_peer_count() == before

    def test_reconnect_is_rate_limited(self):
        config = SystemConfig().with_control_plane(reconnect_rate_limit=1.0)
        system = NetSessionSystem(config, seed=3)
        peers = [system.create_peer() for _ in range(30)]
        for p in peers:
            p.boot()
        # Force everyone onto one CN's region? Just fail each CN that has
        # connections and measure that reconnections are spread over time.
        target = max(system.control.all_cns, key=lambda c: len(c.connected))
        n = len(target.connected)
        if n < 2:
            pytest.skip("not enough peers on one CN")
        system.control.fail_cn(target)
        # With a 1/s rate limit and a small burst allowance, reconnections
        # must take at least n - burst seconds.
        pending = system.sim.pending_count()
        assert pending >= n


class TestDNFailure:
    def test_re_add_restores_directory(self, system, big_object):
        system.publish(big_object)
        country = system.world.by_code["DE"]
        seeders = []
        for _ in range(5):
            s = system.create_peer(country=country, uploads_enabled=True)
            s.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
            s.boot()
            seeders.append(s)
        region = seeders[0].network_region
        dn = system.control.dns_by_region[region][0]
        before = dn.copy_count(big_object.cid)
        assert before == 5
        answered = system.control.fail_dn(dn)
        assert answered >= 5
        assert dn.copy_count(big_object.cid) == 5

    def test_fail_without_recover_leaves_empty(self, system, big_object):
        system.publish(big_object)
        country = system.world.by_code["DE"]
        s = system.create_peer(country=country, uploads_enabled=True)
        s.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        s.boot()
        dn = system.control.dns_by_region[s.network_region][0]
        system.control.fail_dn(dn, recover=False)
        assert not dn.alive
        assert dn.total_registrations() == 0


class TestRollingRestart:
    def test_rolling_restart_preserves_service(self, system, big_object):
        """§3.8: all CNs/DNs restart in a short timeframe without harm."""
        system.publish(big_object)
        country = system.world.by_code["DE"]
        seeders = []
        for _ in range(4):
            s = system.create_peer(country=country, uploads_enabled=True)
            s.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
            s.boot()
            seeders.append(s)
        system.control.rolling_restart()
        system.sim.run(until=system.sim.now + 300.0)
        # All peers reconnected and the directory is repopulated via logins.
        assert system.control.connected_peer_count() == 4
        assert system.control.total_registrations() >= 1


class TestExpirySweep:
    def test_stale_registrations_swept(self, system, big_object):
        system.publish(big_object)
        country = system.world.by_code["DE"]
        s = system.create_peer(country=country, uploads_enabled=True)
        s.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        s.boot()
        # Kill the refresh loop to simulate a wedged client, then wait out
        # the TTL: the hourly sweep must drop the stale entry.
        s._refresh_event.cancel()
        ttl = system.config.control_plane.registration_ttl
        system.sim.run(until=ttl + 7200.0)
        assert system.control.total_registrations() == 0

    def test_refreshing_peer_stays_registered(self, system, big_object):
        system.publish(big_object)
        country = system.world.by_code["DE"]
        s = system.create_peer(country=country, uploads_enabled=True)
        s.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        s.boot()
        ttl = system.config.control_plane.registration_ttl
        system.sim.run(until=ttl + 7200.0)
        assert system.control.total_registrations() == 1
