"""Tests for the DN directory (soft state, rotation, failure)."""

from __future__ import annotations

import pytest

from repro.core.control.database_node import DatabaseNode, PeerRegistration


def reg(guid, cid="c1", t=0.0):
    return PeerRegistration(
        guid=guid, cid=cid, asn=1, country_code="DE", region="Europe",
        nat_reported="open", uploads_enabled=True,
        registered_at=t, refreshed_at=t,
    )


@pytest.fixture
def dn():
    return DatabaseNode("dn-test", "eu", registration_ttl=100.0)


class TestRegistration:
    def test_register_returns_true_for_new(self, dn):
        assert dn.register(reg("a"))

    def test_register_refresh_returns_false(self, dn):
        dn.register(reg("a", t=0.0))
        assert not dn.register(reg("a", t=50.0))

    def test_refresh_updates_timestamp(self, dn):
        dn.register(reg("a", t=0.0))
        dn.register(reg("a", t=50.0))
        assert dn.peers_for("c1")[0].refreshed_at == 50.0

    def test_copy_count(self, dn):
        for g in "abc":
            dn.register(reg(g))
        assert dn.copy_count("c1") == 3
        assert dn.copy_count("other") == 0

    def test_unregister_single_entry(self, dn):
        dn.register(reg("a"))
        dn.register(reg("b"))
        dn.unregister("a", "c1")
        assert [r.guid for r in dn.peers_for("c1")] == ["b"]

    def test_unregister_last_entry_drops_cid(self, dn):
        dn.register(reg("a"))
        dn.unregister("a", "c1")
        assert "c1" not in dn.table

    def test_unregister_peer_across_objects(self, dn):
        dn.register(reg("a", cid="c1"))
        dn.register(reg("a", cid="c2"))
        dn.register(reg("b", cid="c1"))
        dn.unregister_peer("a")
        assert dn.copy_count("c1") == 1
        assert dn.copy_count("c2") == 0

    def test_total_registrations(self, dn):
        dn.register(reg("a", cid="c1"))
        dn.register(reg("a", cid="c2"))
        dn.register(reg("b", cid="c1"))
        assert dn.total_registrations() == 3

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            DatabaseNode("x", "eu", registration_ttl=0.0)


class TestSoftState:
    def test_expire_drops_stale_entries(self, dn):
        dn.register(reg("old", t=0.0))
        dn.register(reg("new", t=90.0))
        dropped = dn.expire(now=150.0)
        assert dropped == 1
        assert [r.guid for r in dn.peers_for("c1")] == ["new"]

    def test_expire_keeps_refreshed_entries(self, dn):
        dn.register(reg("a", t=0.0))
        dn.register(reg("a", t=90.0))  # refresh
        assert dn.expire(now=150.0) == 0

    def test_expire_empty_table(self, dn):
        assert dn.expire(now=1000.0) == 0


class TestRotation:
    def test_rotate_moves_to_end(self, dn):
        for g in "abc":
            dn.register(reg(g))
        dn.rotate_to_end("c1", "a")
        assert [r.guid for r in dn.peers_for("c1")] == ["b", "c", "a"]

    def test_rotate_unknown_guid_noop(self, dn):
        dn.register(reg("a"))
        dn.rotate_to_end("c1", "zzz")
        assert [r.guid for r in dn.peers_for("c1")] == ["a"]


class TestFailure:
    def test_fail_clears_soft_state(self, dn):
        dn.register(reg("a"))
        dn.fail()
        assert not dn.alive
        assert dn.total_registrations() == 0

    def test_failed_dn_rejects_registrations(self, dn):
        dn.fail()
        assert not dn.register(reg("a"))

    def test_recover_accepts_registrations_again(self, dn):
        dn.fail()
        dn.recover()
        assert dn.register(reg("a"))
