"""Tests for the edge-server layer."""

from __future__ import annotations

import random

import pytest

from repro.core.content import ContentObject, ContentProvider
from repro.core.edge import AuthorizationError, AuthToken, EdgeNetwork, EdgeServer


@pytest.fixture
def edge():
    return EdgeNetwork(["eu", "na"], random.Random(1), servers_per_region=2)


@pytest.fixture
def obj():
    provider = ContentProvider(cp_code=5, name="P")
    return ContentObject("file.bin", 50_000_000, provider, p2p_enabled=True)


class TestCatalog:
    def test_publish_and_lookup(self, edge, obj):
        edge.publish(obj)
        assert edge.lookup(obj.cid) is obj

    def test_lookup_unpublished_raises(self, edge, obj):
        with pytest.raises(KeyError):
            edge.lookup(obj.cid)

    def test_unpublish(self, edge, obj):
        edge.publish(obj)
        edge.unpublish(obj.cid)
        with pytest.raises(KeyError):
            edge.lookup(obj.cid)

    def test_unpublish_unknown_is_noop(self, edge):
        edge.unpublish("nope")


class TestAuthorization:
    def test_authorize_published_object(self, edge, obj):
        edge.publish(obj)
        token = edge.authorize("guid1", obj)
        assert edge.verify_token(token, "guid1", obj.cid)

    def test_authorize_unpublished_raises(self, edge, obj):
        with pytest.raises(AuthorizationError):
            edge.authorize("guid1", obj)

    def test_token_bound_to_guid(self, edge, obj):
        edge.publish(obj)
        token = edge.authorize("guid1", obj)
        assert not edge.verify_token(token, "guid2", obj.cid)

    def test_token_bound_to_cid(self, edge, obj):
        edge.publish(obj)
        token = edge.authorize("guid1", obj)
        assert not edge.verify_token(token, "guid1", "other-cid")

    def test_forged_token_rejected(self, edge, obj):
        edge.publish(obj)
        forged = AuthToken(guid="guid1", cid=obj.cid, digest="0" * 32)
        assert not edge.verify_token(forged, "guid1", obj.cid)

    def test_token_from_other_secret_rejected(self, edge, obj):
        edge.publish(obj)
        other = AuthToken.issue("guid1", obj.cid, "wrong-secret")
        assert not edge.verify_token(other, "guid1", obj.cid)


class TestServing:
    def test_server_for_region_round_robins(self, edge):
        a = edge.server_for("eu")
        b = edge.server_for("eu")
        c = edge.server_for("eu")
        assert a is not b
        assert a is c
        assert a.network_region == "eu"

    def test_unknown_region_falls_back_to_any_server(self, edge):
        server = edge.server_for("mars")
        assert server in edge.servers

    def test_record_served_accumulates(self, edge):
        server = edge.servers[0]
        server.record_served("g", "c", 100)
        server.record_served("g", "c", 50)
        assert server.served_bytes[("g", "c")] == 150
        assert server.total_served() == 150

    def test_negative_bytes_rejected(self, edge):
        with pytest.raises(ValueError):
            edge.servers[0].record_served("g", "c", -1)

    def test_trusted_bytes_sums_across_fleet(self, edge):
        edge.servers[0].record_served("g", "c", 100)
        edge.servers[-1].record_served("g", "c", 11)
        assert edge.trusted_bytes_served("g", "c") == 111

    def test_piece_hashes_cover_object(self, edge, obj):
        hashes = edge.piece_hashes(obj)
        assert len(hashes) == obj.num_pieces
        assert len(set(hashes)) == len(hashes)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            EdgeNetwork(["eu"], random.Random(1), servers_per_region=0)

    def test_finite_egress_capacity(self):
        edge = EdgeNetwork(["eu"], random.Random(1), egress_mbps=100.0)
        assert edge.servers[0].egress.capacity == pytest.approx(100e6 / 8)

    def test_default_egress_unconstrained(self, edge):
        assert edge.servers[0].egress.capacity is None
