"""Edge-case tests across the control plane and download engine."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, NetSessionSystem, SystemConfig
from repro.core.peer import CacheEntry

HOUR = 3600.0
MB = 1024 * 1024


class TestRemoteSearchThreshold:
    def test_zero_threshold_disables_remote_search(self, big_object):
        config = SystemConfig().with_control_plane(remote_search_threshold=0)
        system = NetSessionSystem(config, seed=7)
        system.publish(big_object)
        far = system.create_peer(country=system.world.by_code["JP"],
                                 uploads_enabled=True)
        far.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        far.boot()
        querier = system.create_peer(country=system.world.by_code["DE"],
                                     uploads_enabled=True)
        querier.boot()
        assert far.network_region != querier.network_region
        token = system.edge.authorize(querier.guid, big_object)
        resp = querier.cn.query(querier, big_object.cid, token)
        assert resp.candidates == ()


class TestConcurrentDownloads:
    def test_one_peer_two_objects_share_the_downlink(self, system, provider):
        a = ContentObject("a.bin", 120 * MB, provider)
        b = ContentObject("b.bin", 120 * MB, provider)
        system.publish(a)
        system.publish(b)
        peer = system.create_peer()
        peer.boot()
        sa = peer.start_download(a)
        sb = peer.start_download(b)
        system.run(until=12 * HOUR)
        assert sa.state == sb.state == "completed"
        # Sharing one downlink: both cannot have run at full line rate.
        line = (a.size) / peer.link.down_bps
        assert (sa.ended_at - sa.started_at) > line * 1.2 or \
               (sb.ended_at - sb.started_at) > line * 1.2

    def test_downloader_becomes_uploader_mid_swarm(self, system, big_object):
        """A leecher that finishes starts serving later arrivals."""
        system.publish(big_object)
        country = system.world.by_code["DE"]
        seeder = system.create_peer(country=country, uploads_enabled=True)
        seeder.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        seeder.boot()
        first = system.create_peer(country=country, uploads_enabled=True)
        first.boot()
        s1 = first.start_download(big_object)
        system.run(until=6 * HOUR)
        assert s1.state == "completed"
        late = system.create_peer(country=country, uploads_enabled=True)
        late.boot()
        s2 = late.start_download(big_object)
        system.run(until=system.sim.now + 6 * HOUR)
        assert s2.state == "completed"
        # The finished leecher shows up among the late download's uploaders.
        assert first.guid in s2.per_uploader_bytes or \
               seeder.guid in s2.per_uploader_bytes


class TestObjectVersioning:
    def test_new_version_is_a_distinct_swarm(self, system, provider):
        v1 = ContentObject("game.bin", 60 * MB, provider, p2p_enabled=True)
        v2 = v1.new_version()
        system.publish(v1)
        system.publish(v2)
        country = system.world.by_code["DE"]
        holder = system.create_peer(country=country, uploads_enabled=True)
        holder.cache[v1.cid] = CacheEntry(v1.cid, 0.0)
        holder.boot()
        downloader = system.create_peer(country=country, uploads_enabled=True)
        downloader.boot()
        session = downloader.start_download(v2)
        system.run(until=4 * HOUR)
        assert session.state == "completed"
        # v1's holder cannot have served v2 bytes (different cid/hashes).
        assert holder.guid not in session.per_uploader_bytes


class TestCacheEvictionDuringService:
    def test_evicted_object_no_longer_served(self, system, big_object):
        config = SystemConfig().with_client(cache_retention=1800.0)
        system = NetSessionSystem(config, seed=7)
        system.publish(big_object)
        country = system.world.by_code["DE"]
        holder = system.create_peer(country=country, uploads_enabled=True)
        holder.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        holder.boot()
        holder.add_to_cache(big_object.cid)  # schedules eviction
        system.run(until=2 * 3600.0)
        assert not holder.has_complete(big_object.cid)
        assert system.control.total_registrations() == 0
