"""Tests for identifier generation."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.core.ids import content_id, make_guid, make_secondary_guid, piece_hash


class TestGuids:
    def test_guid_is_128_bit_hex(self, rng):
        guid = make_guid(rng)
        assert len(guid) == 32
        int(guid, 16)  # parses as hex

    def test_secondary_guid_is_160_bit_hex(self, rng):
        sg = make_secondary_guid(rng)
        assert len(sg) == 40
        int(sg, 16)

    def test_guids_unique_across_draws(self, rng):
        assert len({make_guid(rng) for _ in range(1000)}) == 1000

    def test_deterministic_given_seed(self):
        a = make_guid(random.Random(1))
        b = make_guid(random.Random(1))
        assert a == b


class TestContentIds:
    def test_same_url_version_same_cid(self):
        assert content_id("a/b", 1) == content_id("a/b", 1)

    def test_version_changes_cid(self):
        assert content_id("a/b", 1) != content_id("a/b", 2)

    def test_url_changes_cid(self):
        assert content_id("a/b", 1) != content_id("a/c", 1)

    @given(idx=st.integers(min_value=0, max_value=10_000))
    def test_piece_hash_deterministic(self, idx):
        cid = content_id("x", 1)
        assert piece_hash(cid, idx) == piece_hash(cid, idx)

    def test_corrupted_piece_hashes_differently(self):
        cid = content_id("x", 1)
        assert piece_hash(cid, 0) != piece_hash(cid, 0, corrupted=True)

    def test_different_pieces_hash_differently(self):
        cid = content_id("x", 1)
        assert piece_hash(cid, 0) != piece_hash(cid, 1)
