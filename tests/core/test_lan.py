"""Tests for the corporate-LAN extension (§5.3)."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.core.selection import QueryContext, specificity_level
from repro.net.lan import LanSite

HOUR = 3600.0
MB = 1024 * 1024


def lan_scene(system, obj, *, same_site=True):
    """A seeder and downloader in one German office (or separate ones)."""
    system.publish(obj)
    germany = system.world.by_code["DE"]
    site_a = LanSite("office-a")
    site_b = site_a if same_site else LanSite("office-b")
    seeder = system.create_peer(country=germany, uploads_enabled=True)
    seeder.lan = site_a
    seeder.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
    seeder.boot()
    downloader = system.create_peer(country=germany, uploads_enabled=True)
    downloader.lan = site_b
    downloader.boot()
    return seeder, downloader


class TestLanSite:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LanSite("x", internal_gbps=0.0)

    def test_membership(self):
        site = LanSite("x")
        site.add_member("g1")
        assert "g1" in site.member_guids

    def test_peer_lan_id(self, system):
        peer = system.create_peer()
        assert peer.lan_id == ""
        peer.lan = LanSite("hq")
        assert peer.lan_id == "hq"


class TestSelectionPriority:
    def test_same_lan_is_most_specific(self):
        from repro.core.control.database_node import PeerRegistration

        ctx = QueryContext(guid="me", asn=1, country_code="DE",
                           region="Europe", nat_reported="open", lan_id="hq")
        same_lan = PeerRegistration(
            guid="a", cid="c", asn=999, country_code="US", region="US East",
            nat_reported="open", uploads_enabled=True, registered_at=0,
            refreshed_at=0, lan_id="hq")
        same_as = PeerRegistration(
            guid="b", cid="c", asn=1, country_code="DE", region="Europe",
            nat_reported="open", uploads_enabled=True, registered_at=0,
            refreshed_at=0)
        assert specificity_level(ctx, same_lan) > specificity_level(ctx, same_as)

    def test_no_lan_query_ignores_lan_field(self):
        from repro.core.control.database_node import PeerRegistration

        ctx = QueryContext(guid="me", asn=1, country_code="DE",
                           region="Europe", nat_reported="open")
        reg = PeerRegistration(
            guid="a", cid="c", asn=1, country_code="DE", region="Europe",
            nat_reported="open", uploads_enabled=True, registered_at=0,
            refreshed_at=0, lan_id="hq")
        assert specificity_level(ctx, reg) == 3  # AS level, not LAN


class TestLanTransfers:
    def test_same_site_transfer_runs_at_lan_speed(self, system, provider):
        obj = ContentObject("u.bin", 800 * MB, provider, p2p_enabled=True)
        seeder, downloader = lan_scene(system, obj, same_site=True)
        session = downloader.start_download(obj)
        system.run(until=2 * HOUR)
        assert session.state == "completed"
        took = session.ended_at - session.started_at
        # 400 MB over a gigabit switch lands in seconds, far faster than
        # this peer's broadband downlink could carry it.
        wan_floor = obj.size / downloader.link.down_bps
        assert took < wan_floor * 0.7
        assert session.peer_fraction > 0.8

    def test_different_site_transfer_uses_wan(self, system, provider):
        obj = ContentObject("u.bin", 200 * MB, provider, p2p_enabled=True)
        seeder, downloader = lan_scene(system, obj, same_site=False)
        session = downloader.start_download(obj)
        system.run(until=4 * HOUR)
        assert session.state == "completed"
        # WAN path: bounded by access links, not the switch.
        took = session.ended_at - session.started_at
        assert took > obj.size / (downloader.link.down_bps * 1.05)

    def test_lan_transfer_skips_upload_throttle(self, system, provider):
        obj = ContentObject("u.bin", 800 * MB, provider, p2p_enabled=True)
        seeder, downloader = lan_scene(system, obj, same_site=True)
        seeder.set_link_busy(True)  # WAN back-off must not slow the LAN
        session = downloader.start_download(obj)
        system.run(until=HOUR)
        assert session.state == "completed"
        # At the WAN back-off rate (10% of a residential uplink) the peer
        # share would be tiny; over the LAN the seeder still dominates.
        assert session.peer_fraction > 0.6

    def test_site_local_share_analysis(self, system, provider):
        from repro.analysis.traffic import site_local_share

        obj = ContentObject("u.bin", 200 * MB, provider, p2p_enabled=True)
        seeder, downloader = lan_scene(system, obj, same_site=True)
        downloader.start_download(obj)
        system.run(until=2 * HOUR)
        mapping = {seeder.guid: "office-a", downloader.guid: "office-a"}
        assert site_local_share(system.logstore, mapping) > 0.8
