"""Tests for the control-plane message vocabulary."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.messages import (
    ConnectInstruction, CrashReport, Login, PeerCandidate, PeerQuery,
    PeerQueryResponse, ReAddRequest, RegisterContent, UnregisterContent,
    UsageReport,
)


class TestImmutability:
    @pytest.mark.parametrize("message", [
        Login(guid="g", ip="i", software_version="v", uploads_enabled=True),
        PeerQuery(guid="g", cid="c", auth_token="t"),
        PeerCandidate(guid="g", ip="i", asn=1, nat_type="open"),
        PeerQueryResponse(cid="c", candidates=()),
        RegisterContent(guid="g", cid="c"),
        UnregisterContent(guid="g", cid="c"),
        ReAddRequest(),
        ConnectInstruction(from_guid="a", to_guid="b", cid="c"),
        CrashReport(guid="g", kind="crash", detail="d", timestamp=0.0),
    ])
    def test_messages_are_frozen(self, message):
        field = dataclasses.fields(message)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(message, field, "mutated")


class TestDefaults:
    def test_login_defaults_to_empty_history(self):
        login = Login(guid="g", ip="i", software_version="v",
                      uploads_enabled=False)
        assert login.secondary_guids == ()

    def test_query_defaults_to_no_exclusions(self):
        query = PeerQuery(guid="g", cid="c", auth_token="t")
        assert query.exclude == frozenset()

    def test_re_add_has_reason(self):
        assert ReAddRequest().reason == "dn-failure"

    def test_usage_report_outcome_default(self):
        report = UsageReport(guid="g", cid="c", cp_code=1, started_at=0.0,
                             ended_at=1.0, claimed_edge_bytes=0,
                             claimed_peer_bytes=0)
        assert report.outcome == "completed"
        assert report.failure_class is None
        assert report.per_uploader_bytes == {}
