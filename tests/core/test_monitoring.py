"""Tests for the monitoring service."""

from __future__ import annotations

import pytest

from repro.core.control.monitoring import MonitoringService
from repro.core.control.stun import StunService
from repro.core.messages import CrashReport
from repro.net.nat import NATProfile, NATType


def report(t=0.0, kind="crash"):
    return CrashReport(guid="g", kind=kind, detail="d", timestamp=t)


class TestMonitoring:
    def test_counts_by_kind(self):
        service = MonitoringService()
        service.report(report(kind="crash"))
        service.report(report(kind="error"))
        service.report(report(kind="crash"))
        assert service.counts["crash"] == 2
        assert service.total_reports() == 3

    def test_recent_ring_bounded(self):
        service = MonitoringService(recent_capacity=5)
        for i in range(10):
            service.report(report(t=float(i)))
        assert len(service.recent) == 5
        assert service.recent[-1].timestamp == 9.0

    def test_alert_on_report_storm(self):
        service = MonitoringService(window=60.0, alert_threshold=10)
        for i in range(10):
            service.report(report(t=float(i)))
        assert len(service.alerts) == 1

    def test_no_alert_when_spread_out(self):
        service = MonitoringService(window=60.0, alert_threshold=10)
        for i in range(10):
            service.report(report(t=float(i * 120)))
        assert service.alerts == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MonitoringService(window=0.0)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            MonitoringService(alert_cooldown=-1.0)

    def test_sustained_overload_realerts_after_cooldown(self):
        # Regression: the old implementation cleared the sliding window on
        # alert, so a sustained storm only ever produced the first alert.
        service = MonitoringService(window=60.0, alert_threshold=10,
                                    alert_cooldown=60.0)
        for i in range(300):
            service.report(report(t=float(i)))
        # Storm runs 0..299s at 1 report/s: alerts at t=9 and then every
        # cooldown period while the rate stays over the threshold.
        assert [t for t, _ in service.alerts] == [9.0, 69.0, 129.0, 189.0, 249.0]

    def test_no_alert_spam_within_cooldown(self):
        service = MonitoringService(window=60.0, alert_threshold=5,
                                    alert_cooldown=60.0)
        for i in range(50):
            service.report(report(t=float(i) * 0.1))
        assert len(service.alerts) == 1

    def test_window_still_slides_under_cooldown(self):
        # The window itself keeps sliding: once the storm stops, old
        # timestamps expire and a fresh burst re-alerts from a full count.
        service = MonitoringService(window=60.0, alert_threshold=10,
                                    alert_cooldown=0.0)
        for i in range(10):
            service.report(report(t=float(i)))
        for i in range(10):
            service.report(report(t=500.0 + float(i)))
        assert [t for t, _ in service.alerts] == [9.0, 509.0]


class TestStun:
    def test_probe_returns_reported_type_and_counts(self):
        stun = StunService()
        profile = NATProfile(NATType.OPEN, NATType.SYMMETRIC)
        assert stun.probe(profile) is NATType.SYMMETRIC
        stun.probe(profile)
        assert stun.probe_count == 2
