"""Tests for the monitoring service."""

from __future__ import annotations

import pytest

from repro.core.control.monitoring import MonitoringService
from repro.core.control.stun import StunService
from repro.core.messages import CrashReport
from repro.net.nat import NATProfile, NATType


def report(t=0.0, kind="crash"):
    return CrashReport(guid="g", kind=kind, detail="d", timestamp=t)


class TestMonitoring:
    def test_counts_by_kind(self):
        service = MonitoringService()
        service.report(report(kind="crash"))
        service.report(report(kind="error"))
        service.report(report(kind="crash"))
        assert service.counts["crash"] == 2
        assert service.total_reports() == 3

    def test_recent_ring_bounded(self):
        service = MonitoringService(recent_capacity=5)
        for i in range(10):
            service.report(report(t=float(i)))
        assert len(service.recent) == 5
        assert service.recent[-1].timestamp == 9.0

    def test_alert_on_report_storm(self):
        service = MonitoringService(window=60.0, alert_threshold=10)
        for i in range(10):
            service.report(report(t=float(i)))
        assert len(service.alerts) == 1

    def test_no_alert_when_spread_out(self):
        service = MonitoringService(window=60.0, alert_threshold=10)
        for i in range(10):
            service.report(report(t=float(i * 120)))
        assert service.alerts == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MonitoringService(window=0.0)


class TestStun:
    def test_probe_returns_reported_type_and_counts(self):
        stun = StunService()
        profile = NATProfile(NATType.OPEN, NATType.SYMMETRIC)
        assert stun.probe(profile) is NATType.SYMMETRIC
        stun.probe(profile)
        assert stun.probe_count == 2
