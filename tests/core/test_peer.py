"""Tests for the NetSession Interface client (PeerNode)."""

from __future__ import annotations

import pytest

from repro.core import NetSessionSystem
from repro.core.peer import CacheEntry


@pytest.fixture
def peer(system):
    return system.create_peer(uploads_enabled=True)


class TestLifecycle:
    def test_starts_offline(self, peer):
        assert not peer.online
        assert peer.ip == ""

    def test_boot_goes_online_with_ip_and_cn(self, peer, system):
        peer.boot()
        assert peer.online
        assert peer.ip
        assert peer.cn is not None
        assert peer.guid in peer.cn.connected

    def test_boot_pushes_secondary_guid(self, peer):
        peer.boot()
        assert len(peer.secondary_history) == 1
        first = peer.secondary_history[0]
        peer.go_offline()
        peer.boot()
        assert peer.secondary_history[0] != first
        assert list(peer.secondary_history)[1] == first

    def test_secondary_history_caps_at_five(self, peer):
        for _ in range(8):
            peer.boot()
            peer.go_offline()
        assert len(peer.secondary_history) == 5

    def test_boot_while_online_is_a_restart(self, peer, system):
        peer.boot()
        logins_before = len(system.logstore.logins)
        peer.boot()
        assert peer.online
        assert len(system.logstore.logins) == logins_before + 1
        assert peer.boot_count == 2

    def test_go_offline_clears_connection(self, peer):
        peer.boot()
        cn = peer.cn
        peer.go_offline()
        assert not peer.online
        assert peer.cn is None
        assert peer.guid not in cn.connected

    def test_new_ip_per_session(self, peer):
        peer.boot()
        ip1 = peer.ip
        peer.go_offline()
        peer.go_online()
        assert peer.ip != ip1

    def test_each_login_recorded(self, peer, system):
        peer.boot()
        peer.go_offline()
        peer.go_online()
        records = [r for r in system.logstore.logins if r.guid == peer.guid]
        assert len(records) == 2

    def test_version_string_encodes_bundle(self, system, provider):
        peer = system.create_peer(installed_from=provider)
        assert f"cp{provider.cp_code}" in peer.software_version


class TestCache:
    def test_add_to_cache_registers_when_uploads_enabled(self, peer, system,
                                                         big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        assert peer.has_complete(big_object.cid)
        assert any(r.guid == peer.guid for r in system.logstore.registrations)

    def test_cache_expires_after_retention(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        system.sim.run(until=system.config.client.cache_retention + 10.0)
        assert not peer.has_complete(big_object.cid)

    def test_disabled_uploads_do_not_register(self, system, big_object):
        peer = system.create_peer(uploads_enabled=False)
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        assert not any(r.guid == peer.guid for r in system.logstore.registrations)

    def test_shareable_cids_excludes_exhausted_budget(self, peer, system,
                                                      big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        peer.uploads_done[big_object.cid] = (
            system.config.client.max_uploads_per_object)
        assert big_object.cid not in peer.shareable_cids()


class TestUploadSlots:
    def test_grant_within_limits(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        assert peer.try_grant_upload(big_object.cid)
        assert peer.active_upload_count == 1

    def test_grant_denied_without_copy(self, peer, system, big_object):
        peer.boot()
        assert not peer.try_grant_upload(big_object.cid)

    def test_grant_denied_when_offline(self, peer, system, big_object):
        peer.cache[big_object.cid] = CacheEntry(big_object.cid, 0.0)
        assert not peer.try_grant_upload(big_object.cid)

    def test_connection_limit_enforced(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        limit = system.config.client.max_upload_connections
        for _ in range(limit):
            assert peer.try_grant_upload(big_object.cid)
        assert not peer.try_grant_upload(big_object.cid)

    def test_release_frees_slot(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        limit = system.config.client.max_upload_connections
        for _ in range(limit):
            peer.try_grant_upload(big_object.cid)
        peer.release_upload()
        assert peer.try_grant_upload(big_object.cid)

    def test_per_object_budget_enforced(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        budget = system.config.client.max_uploads_per_object
        granted = 0
        for _ in range(budget + 10):
            if peer.try_grant_upload(big_object.cid):
                granted += 1
                peer.release_upload()
        assert granted == budget

    def test_upload_rate_cap_reflects_busy_link(self, peer, system):
        cfg = system.config.client
        normal = peer.upload_rate_cap()
        peer.set_link_busy(True)
        backoff = peer.upload_rate_cap()
        assert backoff == pytest.approx(
            normal * cfg.backoff_rate_fraction / cfg.upload_rate_fraction)
        peer.set_link_busy(False)
        assert peer.upload_rate_cap() == pytest.approx(normal)


class TestSettings:
    def test_disable_unregisters_content(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        dn = system.control.all_dns[0]
        total_before = system.control.total_registrations()
        assert total_before == 1
        peer.set_uploads_enabled(False)
        assert system.control.total_registrations() == 0

    def test_reenable_reregisters(self, peer, system, big_object):
        system.publish(big_object)
        peer.boot()
        peer.add_to_cache(big_object.cid)
        peer.set_uploads_enabled(False)
        peer.set_uploads_enabled(True)
        assert system.control.total_registrations() == 1

    def test_noop_toggle_not_counted(self, peer):
        peer.set_uploads_enabled(peer.uploads_enabled)
        assert peer.setting_changes == 0

    def test_toggle_while_offline_changes_pref_only(self, system):
        peer = system.create_peer(uploads_enabled=True)
        peer.set_uploads_enabled(False)
        assert not peer.uploads_enabled
        assert peer.setting_changes == 1


class TestMobility:
    def test_move_changes_location_and_ip(self, peer, system):
        peer.boot()
        old_ip = peer.ip
        target = system.world.by_code["FR"]
        asys = system.topology.eyeball_ases("FR")[0]
        peer.move_to(target, target.cities[0], asys)
        assert peer.country_code == "FR"
        assert peer.online
        assert peer.ip != old_ip

    def test_move_while_offline_stays_offline(self, peer, system):
        target = system.world.by_code["FR"]
        asys = system.topology.eyeball_ases("FR")[0]
        peer.move_to(target, target.cities[0], asys)
        assert not peer.online

    def test_move_produces_two_login_records(self, peer, system):
        peer.boot()
        target = system.world.by_code["FR"]
        asys = system.topology.eyeball_ases("FR")[0]
        peer.move_to(target, target.cities[0], asys)
        records = [r for r in system.logstore.logins if r.guid == peer.guid]
        assert len(records) == 2


class TestCloning:
    def test_snapshot_restore_roundtrip(self, peer):
        peer.boot()
        snap = peer.snapshot_identity()
        peer.go_offline()
        peer.boot()
        newest = peer.secondary_history[0]
        peer.restore_identity(snap)
        assert tuple(peer.secondary_history) == snap.secondary_history
        assert newest not in peer.secondary_history

    def test_restore_preserves_guid(self, peer):
        snap = peer.snapshot_identity()
        peer.restore_identity(snap)
        assert peer.guid == snap.guid

    def test_clone_to_second_machine(self, system, peer):
        peer.boot()
        snap = peer.snapshot_identity()
        clone = system.create_peer(guid=snap.guid)
        clone.restore_identity(snap)
        system.adopt_clone(clone)
        assert clone.guid == peer.guid
        assert system.peer_by_guid[peer.guid] is clone


class TestReporting:
    def test_crash_report_reaches_monitoring(self, peer, system):
        peer.boot()
        peer.report_crash("segfault in nat traversal")
        assert system.control.monitoring.total_reports() == 1

    def test_start_download_requires_online(self, peer, system, big_object):
        system.publish(big_object)
        with pytest.raises(RuntimeError):
            peer.start_download(big_object)
