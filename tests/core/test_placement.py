"""Tests for the predictive-placement extension."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, NetSessionSystem, PlacementConfig, PredictivePlacer
from repro.core.peer import CacheEntry

MB = 1024 * 1024
HOUR = 3600.0


@pytest.fixture
def hot_setup(system, provider):
    """An object with recorded demand in one region, plus idle peers there."""
    obj = ContentObject("hot.bin", 300 * MB, provider, p2p_enabled=True)
    system.publish(obj)
    germany = system.world.by_code["DE"]
    downloaders = []
    for _ in range(4):
        peer = system.create_peer(country=germany, uploads_enabled=True)
        peer.boot()
        peer.start_download(obj)
        downloaders.append(peer)
    system.run(until=4 * HOUR)
    idle = [system.create_peer(country=germany, uploads_enabled=True)
            for _ in range(6)]
    for p in idle:
        p.boot()
    return obj, downloaders, idle


class TestConfig:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            PlacementConfig(interval=0.0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            PlacementConfig(copies_target=0)


class TestPolicy:
    def test_prefetch_started_for_hot_object(self, system, hot_setup):
        obj, downloaders, idle = hot_setup
        placer = PredictivePlacer(system, [obj],
                                  PlacementConfig(copies_target=8,
                                                  hot_threshold=2))
        started = placer.tick()
        assert started > 0
        assert any(obj.cid in p.sessions for p in idle)

    def test_prefetch_records_flagged(self, system, hot_setup):
        obj, downloaders, idle = hot_setup
        placer = PredictivePlacer(system, [obj],
                                  PlacementConfig(copies_target=8,
                                                  hot_threshold=2))
        placer.tick()
        system.run(until=system.sim.now + 4 * HOUR)
        flagged = [r for r in system.logstore.downloads if r.prefetch]
        assert flagged
        assert all(r.outcome == "completed" for r in flagged)

    def test_cold_object_not_prefetched(self, system, provider):
        obj = ContentObject("cold.bin", 100 * MB, provider, p2p_enabled=True)
        system.publish(obj)
        peer = system.create_peer(uploads_enabled=True)
        peer.boot()
        placer = PredictivePlacer(system, [obj], PlacementConfig(hot_threshold=3))
        assert placer.tick() == 0

    def test_budget_limits_prefetches(self, system, hot_setup):
        obj, downloaders, idle = hot_setup
        placer = PredictivePlacer(
            system, [obj],
            PlacementConfig(copies_target=50, hot_threshold=1,
                            max_prefetches_per_tick=2))
        assert placer.tick() <= 2

    def test_satisfied_region_not_refilled(self, system, hot_setup):
        obj, downloaders, idle = hot_setup
        placer = PredictivePlacer(system, [obj],
                                  PlacementConfig(copies_target=2,
                                                  hot_threshold=1))
        # Region already has >= 2 registered copies from the downloads.
        region = downloaders[0].network_region
        copies = sum(dn.copy_count(obj.cid)
                     for dn in system.control.dns_by_region[region])
        if copies >= 2:
            for peer in idle:
                assert obj.cid not in peer.sessions

    def test_busy_peers_not_drafted(self, system, provider):
        obj = ContentObject("hot.bin", 300 * MB, provider, p2p_enabled=True)
        other = ContentObject("busy.bin", 4000 * MB, provider, p2p_enabled=True)
        system.publish(obj)
        system.publish(other)
        germany = system.world.by_code["DE"]
        for _ in range(3):
            d = system.create_peer(country=germany, uploads_enabled=True)
            d.boot()
            d.start_download(obj)
        system.run(until=2 * HOUR)
        busy = system.create_peer(country=germany, uploads_enabled=True)
        busy.boot()
        busy.start_download(other)
        placer = PredictivePlacer(system, [obj],
                                  PlacementConfig(copies_target=50,
                                                  hot_threshold=1))
        placer.tick()
        assert obj.cid not in busy.sessions

    def test_start_stop(self, system, hot_setup):
        obj, _d, _i = hot_setup
        placer = PredictivePlacer(system, [obj])
        placer.start()
        assert placer._event is not None
        placer.stop()
        assert placer._event is None or not placer._event.pending
