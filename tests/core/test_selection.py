"""Tests for locality-aware peer selection (paper §3.7)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.control.database_node import PeerRegistration
from repro.core.selection import QueryContext, select_peers, specificity_level
from repro.net.nat import NATType


def reg(guid, asn=100, country="DE", region="Europe",
        nat=NATType.OPEN, uploads=True):
    return PeerRegistration(
        guid=guid, cid="cid", asn=asn, country_code=country, region=region,
        nat_reported=nat.value, uploads_enabled=uploads,
        registered_at=0.0, refreshed_at=0.0,
    )


def ctx(guid="me", asn=100, country="DE", region="Europe", nat=NATType.OPEN):
    return QueryContext(guid=guid, asn=asn, country_code=country,
                        region=region, nat_reported=nat.value)


@pytest.fixture
def rng():
    return random.Random(7)


class TestSpecificity:
    def test_same_as_is_most_specific(self):
        assert specificity_level(ctx(), reg("a", asn=100)) == 3

    def test_same_country_different_as(self):
        assert specificity_level(ctx(), reg("a", asn=999)) == 2

    def test_same_region_different_country(self):
        assert specificity_level(ctx(), reg("a", asn=999, country="FR")) == 1

    def test_world_fallback(self):
        assert specificity_level(
            ctx(), reg("a", asn=999, country="US", region="US East")) == 0


class TestFilters:
    def test_self_excluded(self, rng):
        chosen = select_peers([reg("me")], ctx(guid="me"), 10, rng)
        assert chosen == []

    def test_exclude_set_respected(self, rng):
        chosen = select_peers([reg("a"), reg("b")], ctx(), 10, rng,
                              exclude=frozenset({"a"}))
        assert [r.guid for r in chosen] == ["b"]

    def test_uploads_disabled_filtered(self, rng):
        chosen = select_peers([reg("a", uploads=False)], ctx(), 10, rng)
        assert chosen == []

    def test_nat_incompatible_filtered(self, rng):
        regs = [reg("sym", nat=NATType.SYMMETRIC)]
        chosen = select_peers(regs, ctx(nat=NATType.SYMMETRIC), 10, rng)
        assert chosen == []

    def test_nat_compatible_kept(self, rng):
        regs = [reg("cone", nat=NATType.FULL_CONE)]
        chosen = select_peers(regs, ctx(nat=NATType.SYMMETRIC), 10, rng)
        assert [r.guid for r in chosen] == ["cone"]

    def test_blocked_peer_never_selected(self, rng):
        regs = [reg("blocked", nat=NATType.BLOCKED)]
        assert select_peers(regs, ctx(), 10, rng) == []

    def test_unknown_nat_string_treated_conservatively(self, rng):
        r = reg("weird")
        r.nat_reported = "???"
        # Conservative default (port-restricted) still connects to OPEN.
        assert select_peers([r], ctx(), 10, rng)

    def test_zero_count_returns_empty(self, rng):
        assert select_peers([reg("a")], ctx(), 0, rng) == []


class TestLocalityOrdering:
    def test_most_specific_first(self, rng):
        regs = [
            reg("world", asn=1, country="US", region="US East"),
            reg("region", asn=2, country="FR"),
            reg("country", asn=3),
            reg("sameas", asn=100),
        ]
        chosen = select_peers(regs, ctx(), 4, rng, diversity_probability=0.0)
        assert [r.guid for r in chosen] == ["sameas", "country", "region", "world"]

    def test_count_limits_to_most_specific(self, rng):
        regs = [reg(f"as{i}", asn=100) for i in range(5)]
        regs += [reg(f"cc{i}", asn=200) for i in range(5)]
        chosen = select_peers(regs, ctx(), 5, rng, diversity_probability=0.0)
        assert all(r.asn == 100 for r in chosen)

    def test_widens_when_specific_set_insufficient(self, rng):
        regs = [reg("as1", asn=100), reg("cc1", asn=200), reg("rg1", country="FR")]
        chosen = select_peers(regs, ctx(), 3, rng, diversity_probability=0.0)
        assert len(chosen) == 3

    def test_rotation_order_preserved_within_level(self, rng):
        regs = [reg(f"a{i}", asn=100) for i in range(6)]
        chosen = select_peers(regs, ctx(), 3, rng, diversity_probability=0.0)
        assert [r.guid for r in chosen] == ["a0", "a1", "a2"]

    def test_no_duplicates_ever(self, rng):
        regs = [reg(f"p{i}", asn=100 if i % 2 else 200) for i in range(30)]
        chosen = select_peers(regs, ctx(), 20, rng, diversity_probability=0.5)
        guids = [r.guid for r in chosen]
        assert len(guids) == len(set(guids))


class TestDiversity:
    def test_diversity_pulls_from_less_specific_sets(self):
        rng = random.Random(3)
        regs = [reg(f"as{i}", asn=100) for i in range(20)]
        regs += [reg(f"far{i}", asn=999, country="US", region="US East")
                 for i in range(20)]
        seen_far = False
        for _ in range(30):
            chosen = select_peers(regs, ctx(), 10, rng, diversity_probability=0.5)
            if any(r.guid.startswith("far") for r in chosen):
                seen_far = True
                break
        assert seen_far

    def test_zero_diversity_is_strictly_local(self):
        rng = random.Random(3)
        regs = [reg(f"as{i}", asn=100) for i in range(20)]
        regs += [reg(f"far{i}", asn=999, country="US", region="US East")
                 for i in range(20)]
        for _ in range(10):
            chosen = select_peers(regs, ctx(), 10, rng, diversity_probability=0.0)
            assert all(r.guid.startswith("as") for r in chosen)


class TestRandomPolicy:
    def test_locality_unaware_ignores_ordering(self):
        regs = [reg(f"p{i}", asn=100 + i) for i in range(40)]
        rng = random.Random(0)
        picks = select_peers(regs, ctx(), 10, rng, locality_aware=False)
        assert len(picks) == 10
        # Over many runs the first pick varies (random, not rotation order).
        firsts = set()
        for seed in range(20):
            picks = select_peers(regs, ctx(), 10, random.Random(seed),
                                 locality_aware=False)
            firsts.add(picks[0].guid)
        assert len(firsts) > 3

    def test_random_policy_still_filters_nat(self, rng):
        regs = [reg("sym", nat=NATType.SYMMETRIC)]
        chosen = select_peers(regs, ctx(nat=NATType.SYMMETRIC), 5, rng,
                              locality_aware=False)
        assert chosen == []


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=60),
        count=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
        diversity=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_never_exceeds_count_and_no_self(self, n, count, seed, diversity):
        rng = random.Random(seed)
        regs = [
            reg(f"p{i}", asn=rng.choice([100, 200, 300]),
                country=rng.choice(["DE", "FR", "US"]),
                region=rng.choice(["Europe", "US East"]))
            for i in range(n)
        ]
        chosen = select_peers(regs, ctx(), count, rng,
                              diversity_probability=diversity)
        assert len(chosen) <= count
        guids = [r.guid for r in chosen]
        assert "me" not in guids
        assert len(guids) == len(set(guids))
