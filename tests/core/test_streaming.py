"""Tests for the streaming extension."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, NetSessionSystem
from repro.core.streaming import StreamingSession, start_streaming
from tests.conftest import make_swarm_scene

MBIT = 1e6 / 8
MB = 1024 * 1024
HOUR = 3600.0


@pytest.fixture
def video(provider):
    # ~11 minutes of 3 Mbit/s video.
    return ContentObject("show.mp4", 250 * MB, provider, p2p_enabled=True)


class TestValidation:
    def test_invalid_bitrate_rejected(self, system, video):
        peer = system.create_peer()
        with pytest.raises(ValueError):
            StreamingSession(system, peer, video, bitrate=0.0)

    def test_offline_peer_rejected(self, system, video):
        system.publish(video)
        peer = system.create_peer()
        with pytest.raises(RuntimeError):
            start_streaming(peer, video, bitrate=3 * MBIT)

    def test_duplicate_request_returns_same_session(self, system, video):
        system.publish(video)
        peer = system.create_peer()
        peer.boot()
        a = start_streaming(peer, video, bitrate=3 * MBIT)
        b = start_streaming(peer, video, bitrate=3 * MBIT)
        assert a is b

    def test_conflicts_with_plain_download(self, system, video):
        system.publish(video)
        peer = system.create_peer()
        peer.boot()
        peer.start_download(video)
        with pytest.raises(RuntimeError):
            start_streaming(peer, video, bitrate=3 * MBIT)


class TestPlayback:
    def test_stream_plays_to_completion(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=4 * HOUR)
        report = session.qoe_report()
        assert report["finished"] == 1.0
        assert session.played_bytes == video.size
        assert session.state == "completed"

    def test_startup_delay_reflects_buffer(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT,
                                  startup_buffer_s=10.0)
        system.run(until=4 * HOUR)
        delay = session.startup_delay
        assert delay is not None
        # Buffer fill at >= line rate: startup within tens of seconds.
        assert 0.0 < delay < 120.0

    def test_fast_link_never_rebuffers(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        # Only rebuffer-free if the link outruns the bitrate.
        if viewer.link.down_bps * 8 < 4e6:
            pytest.skip("sampled link slower than bitrate")
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=4 * HOUR)
        assert session.rebuffer_events == 0

    def test_undersized_link_rebuffers(self, system, provider):
        from repro.net.flows import Resource
        from repro.net.links import AccessLink, mbps

        video = ContentObject("hd.mp4", 120 * MB, provider)
        system.publish(video)
        viewer = system.create_peer()
        viewer.link = AccessLink(Resource("v/d", mbps(2.0)),
                                 Resource("v/u", mbps(0.5)), "dsl")
        viewer.boot()
        # 8 Mbit/s video over a 2 Mbit/s link must stall.
        session = start_streaming(viewer, video, bitrate=8 * MBIT)
        system.run(until=6 * HOUR)
        assert session.rebuffer_events > 0
        assert session.rebuffer_time > 0.0

    def test_stream_gets_peer_assist(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=4 * HOUR)
        assert session.peer_fraction > 0.3

    def test_aborted_stream_stops_clock(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=10.0)
        session.abort()
        events_before = session.rebuffer_events
        system.run(until=HOUR)
        assert session.rebuffer_events == events_before
        assert session.playback_finished_at is None

    def test_contiguous_prefix_accounting(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        # Simulate out-of-order receipt: holes stop the prefix.
        session.received = {0, 1, 3}
        expected = video.piece_size(0) + video.piece_size(1)
        assert session.contiguous_bytes() == expected


class TestTailScheduling:
    """Regression: end-of-file urgency starvation.

    The urgent window used to be a fixed-size head reservation; once the
    pool shrank to the window size every peer connection was refused work
    (``take_chunk`` returned None) and the edge served the whole tail
    alone.  The window now shrinks with the pool.
    """

    def _session_with_pool(self, system, video, pool):
        viewer = system.create_peer()
        viewer.boot()
        session = StreamingSession(system, viewer, video, bitrate=3 * MBIT)
        session.piece_pool = list(pool)
        return session

    def test_peers_still_get_work_in_the_tail(self, system, video):
        system.publish(video)
        session = self._session_with_pool(system, video, [10, 11, 12, 13])
        chunk = session.take_chunk(object())  # any non-edge connection
        assert chunk is not None, "tail-sized pool starved the peer"
        # The shrunken window still reserves the head for the edge.
        assert 10 not in chunk.pieces
        assert 10 in session.piece_pool

    def test_full_pool_keeps_the_full_urgent_window(self, system, video):
        from repro.core.streaming import URGENT_WINDOW_PIECES

        system.publish(video)
        pool = list(range(20))
        session = self._session_with_pool(system, video, pool)
        chunk = session.take_chunk(object())
        assert chunk is not None
        assert min(chunk.pieces) == URGENT_WINDOW_PIECES

    def test_last_piece_is_still_reachable(self, system, video):
        system.publish(video)
        session = self._session_with_pool(system, video, [99])
        chunk = session.take_chunk(object())
        assert chunk is not None and list(chunk.pieces) == [99]


class TestViewerActions:
    def test_skip_ahead_moves_the_playhead(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=120.0)
        before = session.played_bytes
        session.skip_ahead(60.0)
        assert session.played_bytes >= before
        system.run(until=4 * HOUR)
        assert session.qoe_report()["finished"] == 1.0

    def test_skip_ahead_never_lands_on_the_end(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=60.0)
        session.skip_ahead(1e9)
        assert session.played_bytes < video.size
        system.run(until=4 * HOUR)
        assert session.qoe_report()["finished"] == 1.0

    def test_stop_playback_freezes_the_session(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=120.0)
        session.stop_playback()
        played = session.played_bytes
        system.run(until=4 * HOUR)
        assert session.played_bytes == played
        assert session.playback_finished_at is None


class TestVodCounters:
    def test_system_counters_track_sessions(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        start_streaming(viewer, video, bitrate=3 * MBIT)
        assert system.vod.streams_started == 1
        system.run(until=4 * HOUR)
        stats = system.stats().vod
        assert stats.streams_started == 1
        assert stats.playbacks_finished == 1

    def test_streamed_download_record_carries_qoe(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=4 * HOUR)
        recs = [r for r in system.logstore.downloads if r.streamed]
        assert len(recs) == 1
        rec = recs[0]
        assert rec.bitrate == session.bitrate
        assert rec.startup_delay == session.startup_delay
        plain = [r for r in system.logstore.downloads if not r.streamed]
        for r in plain:
            assert r.bitrate == 0.0 and r.startup_delay is None


class TestStreamingResilience:
    def test_stream_survives_seeder_churn(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=30.0)
        for s in seeders[::2]:
            s.go_offline()
        system.run(until=4 * HOUR)
        assert session.qoe_report()["finished"] == 1.0

    def test_stream_without_peers_is_edge_fed(self, system, video):
        system.publish(video)
        viewer = system.create_peer(uploads_enabled=True)
        viewer.boot()
        session = start_streaming(viewer, video, bitrate=2 * MBIT)
        system.run(until=4 * HOUR)
        report = session.qoe_report()
        assert session.peer_bytes == 0
        if viewer.link.down_bps * 8 > 3e6:
            assert report["finished"] == 1.0

    def test_buffered_seconds_bounded_by_prefix(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=60.0)
        assert session.buffered_seconds() * 3 * MBIT <= (
            session.contiguous_bytes() + 1.0)

    def test_qoe_report_fields(self, system, video):
        seeders, viewer = make_swarm_scene(system, video)
        session = start_streaming(viewer, video, bitrate=3 * MBIT)
        system.run(until=4 * HOUR)
        report = session.qoe_report()
        assert set(report) == {"startup_delay", "rebuffer_events",
                               "rebuffer_time", "peer_fraction", "finished"}
