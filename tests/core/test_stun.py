"""Tests for the STUN service and the NAT model it fronts (paper §3.6)."""

from __future__ import annotations

import random

import pytest

from repro.core.control.stun import StunService
from repro.net.nat import (
    DEFAULT_NAT_MIX, NATModel, NATProfile, NATType, can_connect,
)


class TestStunService:
    def test_probe_returns_reported_type(self):
        stun = StunService()
        profile = NATProfile(true_type=NATType.SYMMETRIC,
                             reported_type=NATType.OPEN)
        # STUN reports the (possibly mis-) classified type, never the truth.
        assert stun.probe(profile) is NATType.OPEN

    def test_probe_volume_counted(self):
        stun = StunService(name="stun-eu")
        profile = NATProfile(true_type=NATType.OPEN,
                             reported_type=NATType.OPEN)
        for _ in range(5):
            stun.probe(profile)
        assert stun.probe_count == 5
        assert stun.name == "stun-eu"

    def test_cn_login_runs_a_probe(self, system):
        # §3.6: connectivity is (re)determined when a peer logs into a CN.
        before = system.control.stun.probe_count
        country = system.world.by_code["DE"]
        peer = system.create_peer(country=country, uploads_enabled=True)
        peer.boot()
        assert system.control.stun.probe_count == before + 1


class TestNATModel:
    def test_sample_is_deterministic_per_seed(self):
        a = NATModel(random.Random(5)).sample()
        b = NATModel(random.Random(5)).sample()
        assert a == b

    def test_sample_follows_the_mix(self):
        model = NATModel(random.Random(1), misclassify_prob=0.0)
        counts = {t: 0 for t in NATType}
        n = 4000
        for _ in range(n):
            counts[model.sample().true_type] += 1
        for nat_type, weight in DEFAULT_NAT_MIX.items():
            assert counts[nat_type] / n == pytest.approx(weight, abs=0.03)

    def test_misclassification_rate(self):
        model = NATModel(random.Random(2), misclassify_prob=0.1)
        n = 3000
        wrong = sum(model.sample().misclassified for _ in range(n))
        assert wrong / n == pytest.approx(0.1, abs=0.03)

    def test_zero_misclassify_prob_always_truthful(self):
        model = NATModel(random.Random(3), misclassify_prob=0.0)
        assert not any(model.sample().misclassified for _ in range(500))

    def test_rng_override_leaves_model_stream_untouched(self):
        model = NATModel(random.Random(4))
        baseline = NATModel(random.Random(4))
        model.sample(rng=random.Random(99))  # e.g. a fault-layer draw
        # The model's own stream must be unperturbed by the override.
        assert model.sample() == baseline.sample()

    def test_rebind_redraws_from_mix(self):
        model = NATModel(random.Random(6))
        profile = model.sample()
        rebound = model.rebind(profile, random.Random(7))
        assert isinstance(rebound, NATProfile)
        assert isinstance(rebound.true_type, NATType)

    def test_classify_is_a_repeat_probe(self):
        model = NATModel(random.Random(8))
        profile = NATProfile(true_type=NATType.FULL_CONE,
                             reported_type=NATType.SYMMETRIC)
        assert model.classify(profile) is NATType.SYMMETRIC

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NATModel(random.Random(0), mix={NATType.OPEN: 0.0})
        with pytest.raises(ValueError):
            NATModel(random.Random(0), misclassify_prob=1.0)
        with pytest.raises(ValueError):
            NATModel(random.Random(0), misclassify_prob=-0.1)


class TestTraversalMatrix:
    def test_symmetric_matrix(self):
        for a in NATType:
            for b in NATType:
                assert can_connect(a, b) == can_connect(b, a)

    def test_blocked_is_unreachable(self):
        for t in NATType:
            assert not can_connect(t, NATType.BLOCKED)

    def test_symmetric_pairings_fail(self):
        assert not can_connect(NATType.SYMMETRIC, NATType.SYMMETRIC)
        assert not can_connect(NATType.SYMMETRIC, NATType.PORT_RESTRICTED)

    def test_coordinated_punching_succeeds_otherwise(self):
        assert can_connect(NATType.SYMMETRIC, NATType.RESTRICTED_CONE)
        assert can_connect(NATType.PORT_RESTRICTED, NATType.PORT_RESTRICTED)
        assert can_connect(NATType.OPEN, NATType.FULL_CONE)

    def test_default_mix_is_a_distribution(self):
        assert sum(DEFAULT_NAT_MIX.values()) == pytest.approx(1.0)
        assert set(DEFAULT_NAT_MIX) == set(NATType)
