"""Tests for the download engine: sessions, swarming, backstop, integrity."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, NetSessionSystem, SystemConfig
from repro.core.peer import CacheEntry
from repro.core.swarm import Chunk
from tests.conftest import make_swarm_scene

HOUR = 3600.0


class TestChunk:
    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            Chunk([])

    def test_size_sums_piece_sizes(self, big_object):
        chunk = Chunk([0, 1, 2])
        from repro.core.content import PIECE_SIZE
        assert chunk.size(big_object) == 3 * PIECE_SIZE

    def test_split_at_bytes_whole_pieces_only(self, big_object):
        from repro.core.content import PIECE_SIZE
        chunk = Chunk([0, 1, 2])
        done, rest = chunk.split_at_bytes(big_object, 1.5 * PIECE_SIZE)
        assert done == [0]
        assert rest == [1, 2]

    def test_split_all_transferred(self, big_object):
        from repro.core.content import PIECE_SIZE
        chunk = Chunk([0, 1])
        done, rest = chunk.split_at_bytes(big_object, 2 * PIECE_SIZE)
        assert done == [0, 1]
        assert rest == []

    def test_split_nothing_transferred(self, big_object):
        chunk = Chunk([0, 1])
        done, rest = chunk.split_at_bytes(big_object, 0.0)
        assert done == []
        assert rest == [0, 1]


class TestEdgeOnlyDownload:
    def test_infra_object_downloads_from_edge_only(self, system, small_object):
        system.publish(small_object)
        peer = system.create_peer(uploads_enabled=True)
        peer.boot()
        session = peer.start_download(small_object)
        system.run(until=2 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes == 0
        assert session.edge_bytes == small_object.size

    def test_completion_rate_matches_downlink(self, system, small_object):
        system.publish(small_object)
        peer = system.create_peer()
        peer.boot()
        session = peer.start_download(small_object)
        system.run(until=2 * HOUR)
        expected = small_object.size / peer.link.down_bps
        took = session.ended_at - session.started_at
        assert took == pytest.approx(expected, rel=0.05)

    def test_download_recorded_in_logs(self, system, small_object):
        system.publish(small_object)
        peer = system.create_peer()
        peer.boot()
        peer.start_download(small_object)
        system.run(until=2 * HOUR)
        recs = [r for r in system.logstore.downloads if r.guid == peer.guid]
        assert len(recs) == 1
        assert recs[0].outcome == "completed"
        assert recs[0].edge_bytes == small_object.size

    def test_edge_bytes_logged_at_edge_servers(self, system, small_object):
        system.publish(small_object)
        peer = system.create_peer()
        peer.boot()
        peer.start_download(small_object)
        system.run(until=2 * HOUR)
        assert system.edge.trusted_bytes_served(
            peer.guid, small_object.cid) == small_object.size

    def test_duplicate_start_returns_same_session(self, system, small_object):
        system.publish(small_object)
        peer = system.create_peer()
        peer.boot()
        a = peer.start_download(small_object)
        b = peer.start_download(small_object)
        assert a is b

    def test_unpublished_object_fails_authorization(self, system, small_object):
        peer = system.create_peer()
        peer.boot()
        session = peer.start_download(small_object)
        assert session.state == "failed"


class TestPeerAssistedDownload:
    def test_peers_supply_majority_of_bytes(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert session.state == "completed"
        assert session.peer_fraction > 0.5
        assert session.edge_bytes + session.peer_bytes == obj.size

    def test_per_uploader_bytes_sum_to_peer_bytes(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert sum(session.per_uploader_bytes.values()) == session.peer_bytes

    def test_uploaders_are_seeders(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=8 * HOUR)
        seeder_guids = {s.guid for s in seeders}
        assert set(session.per_uploader_bytes) <= seeder_guids

    def test_peers_initially_returned_recorded(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert session.peers_initially_returned >= 1

    def test_completed_download_registers_for_upload(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert downloader.has_complete(obj.cid)
        regs = [r for r in system.logstore.registrations
                if r.guid == downloader.guid]
        assert len(regs) == 1

    def test_p2p_disabled_globally_means_edge_only(self, big_object):
        config = SystemConfig(p2p_globally_enabled=False)
        system = NetSessionSystem(config, seed=7)
        seeders, downloader = make_swarm_scene(system, big_object)
        session = downloader.start_download(big_object)
        system.run(until=8 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes == 0

    def test_no_control_plane_falls_back_to_edge(self, system, big_object):
        seeders, downloader = make_swarm_scene(system, big_object)
        for cn in system.control.all_cns:
            cn.fail()
        downloader.reconnect()
        session = downloader.start_download(big_object)
        system.run(until=8 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes == 0


class TestBackstop:
    def test_edge_throttled_when_peers_deliver(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=120.0)
        if session.state == "active" and session.peer_conns:
            assert session.edge_cap is not None

    def test_backstop_disabled_keeps_edge_uncapped(self, big_object):
        config = SystemConfig().with_client(edge_backstop_enabled=False)
        system = NetSessionSystem(config, seed=7)
        seeders, downloader = make_swarm_scene(system, big_object)
        session = downloader.start_download(big_object)
        system.run(until=300.0)
        assert session.edge_cap is None

    def test_backstop_covers_when_no_peers(self, system, big_object):
        system.publish(big_object)
        downloader = system.create_peer(uploads_enabled=True)
        downloader.boot()
        session = downloader.start_download(big_object)
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes == 0

    def test_offload_lower_without_backstop(self, big_object):
        """The backstop policy only matters when the downlink outruns the
        swarm: build that case explicitly (fast downloader, slow seeders)."""
        from repro.net.flows import Resource
        from repro.net.links import AccessLink, mbps

        provider = big_object.provider
        huge = ContentObject("huge.bin", 2 * 1024 ** 3, provider,
                             p2p_enabled=True)

        def run_with(backstop: bool) -> tuple[float, float]:
            config = SystemConfig().with_client(edge_backstop_enabled=backstop)
            system = NetSessionSystem(config, seed=11)
            seeders, downloader = make_swarm_scene(system, huge, seeders=5)
            downloader.link = AccessLink(
                downlink=Resource("fast/down", mbps(100.0)),
                uplink=Resource("fast/up", mbps(10.0)), tier="fiber")
            for i, seeder in enumerate(seeders):
                seeder.link = AccessLink(
                    downlink=Resource(f"s{i}/down", mbps(8.0)),
                    uplink=Resource(f"s{i}/up", mbps(1.0)), tier="dsl")
            session = downloader.start_download(huge)
            system.run(until=12 * HOUR)
            assert session.state == "completed"
            return session.peer_fraction, session.ended_at - session.started_at

        eff_on, dur_on = run_with(True)
        eff_off, dur_off = run_with(False)
        # Throttling the edge trades speed for offload.
        assert eff_on > eff_off
        assert dur_on > dur_off


class TestPauseResume:
    def test_pause_stops_progress_resume_completes(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=30.0)
        session.pause()
        frozen = session.progress
        system.run(until=system.sim.now + HOUR)
        assert session.progress == pytest.approx(frozen, abs=0.01)
        session.resume()
        system.run(until=system.sim.now + 8 * HOUR)
        assert session.state == "completed"

    def test_progress_preserved_across_offline(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=30.0)
        downloader.go_offline()
        assert session.state == "paused"
        progress = session.progress
        downloader.go_online()
        assert session.state == "active"
        system.run(until=system.sim.now + 8 * HOUR)
        assert session.state == "completed"
        assert session.progress >= progress

    def test_abort_is_terminal(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=30.0)
        session.abort()
        assert session.state == "aborted"
        session.resume()
        assert session.state == "aborted"
        recs = [r for r in system.logstore.downloads
                if r.guid == downloader.guid]
        assert recs[0].outcome == "aborted"

    def test_bytes_to_date_reported_on_abort(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=60.0)
        session.abort()
        rec = [r for r in system.logstore.downloads
               if r.guid == downloader.guid][0]
        assert 0 <= rec.total_bytes < obj.size


class TestChurn:
    def test_uploader_going_offline_does_not_stall_download(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=45.0)
        for seeder in seeders:
            seeder.go_offline()
        system.run(until=system.sim.now + 12 * HOUR)
        assert session.state == "completed"

    def test_download_survives_cn_failure(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        session = downloader.start_download(obj)
        system.run(until=30.0)
        system.control.fail_cn(downloader.cn)
        system.run(until=system.sim.now + 12 * HOUR)
        assert session.state == "completed"


class TestIntegrity:
    def test_corrupting_uploader_does_not_poison_download(self, system,
                                                          big_object):
        seeders, downloader = make_swarm_scene(system, big_object, seeders=8)
        for s in seeders:
            s.piece_corruption_prob = 0.3
        session = downloader.start_download(big_object)
        system.run(until=12 * HOUR)
        # All pieces eventually verified; corruption was detected and retried.
        if session.state == "completed":
            assert session.corrupted_bytes > 0
            assert len(session.received) == big_object.num_pieces
        else:
            assert session.failure_class == "system"

    def test_all_corrupt_swarm_fails_with_system_cause(self, big_object):
        config = SystemConfig().with_client(
            max_corrupted_pieces=5, conn_corruption_ban=1000)
        system = NetSessionSystem(config, seed=7)
        seeders, downloader = make_swarm_scene(system, big_object, seeders=10)
        for s in seeders:
            s.piece_corruption_prob = 1.0
        # Edge trickles so peers carry (and corrupt) most pieces.
        session = downloader.start_download(big_object)
        system.run(until=12 * HOUR)
        if session.state == "failed":
            assert session.failure_class == "system"
            rec = [r for r in system.logstore.downloads
                   if r.guid == downloader.guid][0]
            assert rec.failure_class == "system"

    def test_corrupt_connection_gets_banned(self, system, big_object):
        seeders, downloader = make_swarm_scene(system, big_object, seeders=4)
        bad = seeders[0]
        bad.piece_corruption_prob = 1.0
        session = downloader.start_download(big_object)
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        # The corruptor contributed nothing useful.
        assert session.per_uploader_bytes.get(bad.guid, 0) == 0


class TestCorruptionDefense:
    """Unit-level checks on the session's anti-corruption bookkeeping."""

    def _session(self, system, obj, peer=None):
        from repro.core.swarm import DownloadSession
        if peer is None:
            peer = system.create_peer()
        session = DownloadSession(system, peer, obj)
        session.state = "active"
        return session

    def test_ban_triggers_exactly_at_threshold(self, system, big_object):
        session = self._session(system, big_object)
        ban = system.config.client.conn_corruption_ban
        session.note_corruption("g", ban - 1)
        assert "g" not in session.banned_uploaders
        assert system.defense.uploader_bans == 0
        session.note_corruption("g", 1)
        assert "g" in session.banned_uploaders
        assert system.defense.uploader_bans == 1
        # Further corruption never double-counts the ban.
        session.note_corruption("g", 5)
        assert system.defense.uploader_bans == 1

    def test_ban_aggregates_across_connections(self, system, big_object):
        # The ban-evasion fix: each connection sees only one corrupt piece
        # (below conn_corruption_ban), but the session-level aggregate bans.
        from repro.core.swarm import PeerConnection
        session = self._session(system, big_object)
        bad = system.create_peer(uploads_enabled=True)
        bad.piece_corruption_prob = 1.0
        conns = [PeerConnection(session, bad) for _ in range(2)]
        for conn, piece in zip(conns, (0, 1)):
            conn._verify_and_deliver([piece])
            assert conn.corrupted_pieces == 1
        assert bad.guid in session.banned_uploaders
        assert session.corrupt_by_uploader[bad.guid] == 2
        assert session.corrupted_piece_count == 2
        assert sorted(session.piece_pool) == [0, 1]  # both requeued
        assert session.peer_bytes == 0

    def test_requeue_filters_received_and_preserves_order(self, system,
                                                          big_object):
        session = self._session(system, big_object)
        session.piece_pool = [0, 1]
        session.received = {3}
        session.requeue_pieces([5, 3, 7])
        assert session.piece_pool == [0, 1, 5, 7]
        # Requeueing is idempotent with respect to delivered pieces.
        session.received.add(5)
        session.requeue_pieces([5])
        assert session.piece_pool == [0, 1, 5, 7]

    def _mid_chunk_stop(self, system, big_object, corruption_prob):
        """Abort a 2-piece peer chunk at 1.5 pieces transferred."""
        from repro.core.content import PIECE_SIZE
        from repro.core.swarm import Chunk, PeerConnection
        session = self._session(system, big_object)
        uploader = system.create_peer(uploads_enabled=True)
        uploader.piece_corruption_prob = corruption_prob
        conn = PeerConnection(session, uploader)
        session.peer_conns.append(conn)
        conn.chunk = Chunk([0, 1])
        # Flow over the uplink alone: the sole flow runs at link capacity,
        # so the stop time below lands deterministically mid-piece-1.
        conn.flow = system.flows.start_flow(
            [uploader.link.uplink], 2 * PIECE_SIZE,
            on_complete=conn._on_chunk_done, meta=conn,
        )
        uploader.upload_flows.add(conn.flow)
        system.run(until=1.5 * PIECE_SIZE / uploader.link.up_bps)
        conn.stop(credit_partial=True)
        return session, uploader

    def test_credit_partial_delivers_completed_piece(self, system, big_object):
        from repro.core.content import PIECE_SIZE
        session, uploader = self._mid_chunk_stop(system, big_object, 0.0)
        assert session.received == {0}
        assert session.peer_bytes == PIECE_SIZE
        assert session.per_uploader_bytes[uploader.guid] == PIECE_SIZE
        assert session.piece_pool == [1]  # the half-transferred piece
        assert session.corrupted_piece_count == 0

    def test_credit_partial_discards_corrupt_completed_piece(self, system,
                                                             big_object):
        session, uploader = self._mid_chunk_stop(system, big_object, 1.0)
        # Piece 0 transferred whole but failed the hash check: it is
        # discarded, attributed, and requeued along with unfinished piece 1.
        assert session.received == set()
        assert session.peer_bytes == 0
        assert session.corrupted_piece_count == 1
        assert session.corrupt_by_uploader[uploader.guid] == 1
        assert sorted(session.piece_pool) == [0, 1]
        assert system.defense.corrupted_pieces == 1


class TestAccountingIntegration:
    def test_honest_reports_accepted(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert len(system.accounting.accepted) == 1
        assert system.accounting.rejected == []

    def test_attacker_report_rejected(self, swarm_scene):
        system, obj, seeders, downloader = swarm_scene
        downloader.accounting_attacker = True
        downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert len(system.accounting.rejected) == 1
        # The download record still exists (logs vs billing are separate).
        assert any(r.guid == downloader.guid
                   for r in system.logstore.downloads)


class TestBlackoutPromotion:
    """Downloads started while the control plane is down must regain peer
    sources after recovery (§3.8) — they used to stay edge-only forever."""

    def _blackout_scene(self, seed=7):
        from repro.core import ContentProvider

        system = NetSessionSystem(seed=seed)
        provider = ContentProvider(cp_code=9001, name="BlackoutCo")
        obj = ContentObject("blk.bin", 600 * 1024 * 1024, provider, p2p_enabled=True)
        seeders, downloader = make_swarm_scene(system, obj)
        return system, obj, seeders, downloader

    def test_blackout_started_download_is_promoted_on_reconnect(self):
        system, obj, seeders, downloader = self._blackout_scene()
        system.run(until=10.0)
        system.control.blackout()
        session = downloader.start_download(obj)
        # edge-only from byte one: the login retries are still failing
        system.run(until=200.0)
        assert session.state == "active"
        assert session.peer_bytes == 0
        assert downloader.channel.times_degraded == 1

        # restore with scheduled reconnects (the §3.8 rate-limited path):
        # seeders re-register and the degraded downloader is promoted
        system.control.restore(peers=list(system.all_peers))
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes > 0
        assert system.channel_stats.sessions_promoted >= 1

    def test_blackout_started_download_recovers_via_probes_alone(self):
        # self recovery: nobody schedules reconnects; the breaker probes
        # must bring the peer back and the promoted session must re-query
        # until the repopulating directory has candidates.
        system, obj, seeders, downloader = self._blackout_scene()
        system.run(until=10.0)
        system.control.blackout()
        session = downloader.start_download(obj)
        system.run(until=200.0)
        assert session.peer_bytes == 0

        restore_t = system.sim.now
        system.control.restore()  # no peers: probe-driven recovery only
        # seeders have not noticed anything; make a couple of them
        # re-register the way production does (RE-ADD via their refresh)
        for seeder in seeders[:4]:
            seeder.channel.refresh_registrations()
        system.run(until=12 * HOUR)
        probe = system.config.channel.probe_interval
        assert downloader.channel.last_recovered_at is not None
        assert downloader.channel.last_recovered_at - restore_t <= 2 * probe
        assert session.state == "completed"
        assert session.peer_bytes > 0

    def test_momentary_cn_loss_does_not_strand_session(self):
        # the CN dies an instant before the download starts; the session
        # must attach peer sourcing once the relogin lands, without any
        # breaker trip at all.
        system, obj, seeders, downloader = self._blackout_scene()
        system.run(until=10.0)
        system.control.fail_cn(downloader.cn)
        session = downloader.start_download(obj)
        system.run(until=8 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes > 0
        assert downloader.channel.times_degraded == 0
