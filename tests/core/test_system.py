"""Tests for the NetSessionSystem facade."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem


class TestAssembly:
    def test_default_construction(self):
        system = NetSessionSystem(seed=1)
        assert system.control.all_cns
        assert system.control.all_dns
        assert system.edge.servers
        assert len(system.world) > 30

    def test_deterministic_given_seed(self):
        a = NetSessionSystem(seed=5)
        b = NetSessionSystem(seed=5)
        pa = a.create_peer()
        pb = b.create_peer()
        assert pa.guid == pb.guid
        assert pa.country_code == pb.country_code
        assert pa.asn == pb.asn

    def test_different_seeds_differ(self):
        a = NetSessionSystem(seed=5).create_peer()
        b = NetSessionSystem(seed=6).create_peer()
        assert a.guid != b.guid

    def test_publish_registers_provider(self, system, provider, small_object):
        system.publish(small_object)
        assert provider.cp_code in system.providers
        assert system.edge.lookup(small_object.cid) is small_object


class TestPeerCreation:
    def test_upload_default_from_provider_mix(self):
        system = NetSessionSystem(seed=3)
        never = ContentProvider(cp_code=1, name="never", upload_default_rate=0.0)
        always = ContentProvider(cp_code=2, name="always", upload_default_rate=1.0)
        offs = [system.create_peer(installed_from=never) for _ in range(20)]
        ons = [system.create_peer(installed_from=always) for _ in range(20)]
        assert not any(p.uploads_enabled for p in offs)
        assert all(p.uploads_enabled for p in ons)

    def test_explicit_uploads_enabled_overrides(self, system, provider):
        peer = system.create_peer(uploads_enabled=False, installed_from=provider)
        assert not peer.uploads_enabled

    def test_country_pinning(self, system):
        jp = system.world.by_code["JP"]
        peer = system.create_peer(country=jp)
        assert peer.country_code == "JP"
        assert peer.asys.country_code == "JP"

    def test_peers_indexed_by_guid(self, system):
        peer = system.create_peer()
        assert system.peer_by_guid[peer.guid] is peer


class TestRunAndFinalize:
    def test_online_peer_count(self, system):
        peers = [system.create_peer() for _ in range(4)]
        for p in peers[:3]:
            p.boot()
        assert system.online_peer_count() == 3

    def test_finalize_aborts_open_sessions(self, system, big_object, provider):
        system.publish(big_object)
        peer = system.create_peer(uploads_enabled=True)
        peer.boot()
        session = peer.start_download(big_object)
        system.run(until=5.0)
        count = system.finalize_open_downloads()
        assert count == 1
        assert session.state == "aborted"

    def test_finalize_with_nothing_open(self, system):
        assert system.finalize_open_downloads() == 0
