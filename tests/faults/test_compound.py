"""Compound-failure tests: overlapping faults racing each other (§3.8).

The single-fault specs are covered in test_spec.py; these tests overlap
faults whose recovery paths interact — a DN wipe whose RE-ADD broadcast
lands in the middle of a churn storm, and directory soft-state expiry
racing a region partition that blocks the refresh that would renew it.
"""

from __future__ import annotations

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem, SystemConfig
from repro.core.control.channel import DEGRADED
from repro.core.peer import CacheEntry
from repro.faults import (
    ControlLatencySpike, ControlMessageLoss, DNWipe, FaultInjector,
    PeerChurnStorm, RegionPartition,
)

HOUR = 3600.0
MB = 1024 * 1024


def build_system(config=None, seed=11, n_peers=12):
    system = NetSessionSystem(config=config, seed=seed)
    provider = ContentProvider(cp_code=1, name="P")
    obj = ContentObject("c.bin", 100 * MB, provider, p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    for _ in range(n_peers):
        p = system.create_peer(country=country, uploads_enabled=True)
        p.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
        p.boot()
    return system, obj


class TestNewSpecValidation:
    def test_loss_prob_range(self):
        with pytest.raises(ValueError):
            ControlMessageLoss("x", start=0.0, loss_prob=1.0)
        with pytest.raises(ValueError):
            ControlMessageLoss("x", start=0.0, loss_prob=-0.1)

    def test_latency_nonnegative(self):
        with pytest.raises(ValueError):
            ControlLatencySpike("x", start=0.0, latency=-1.0)


class TestNewSpecsApplyRevert:
    def test_message_loss_sets_and_restores_loss_prob(self):
        system, _ = build_system()
        spec = ControlMessageLoss("loss", start=0.0, duration=60.0,
                                  fraction=0.5, loss_prob=0.4)
        injector = FaultInjector(system, (spec,), seed=3)
        injector.arm()
        system.run(until=30.0)
        lossy = [p for p in system.all_peers if p.channel.loss_prob == 0.4]
        assert 0 < len(lossy) < len(system.all_peers)
        system.run(until=120.0)
        assert all(p.channel.loss_prob == 0.0 for p in system.all_peers)

    def test_latency_spike_sets_and_restores_latency(self):
        system, _ = build_system()
        spec = ControlLatencySpike("lat", start=0.0, duration=60.0,
                                   latency=5.0)
        injector = FaultInjector(system, (spec,), seed=3)
        injector.arm()
        system.run(until=30.0)
        assert all(p.channel.latency == 5.0 for p in system.all_peers)
        system.run(until=120.0)
        assert all(p.channel.latency == 0.0 for p in system.all_peers)

    def test_partition_scopes_to_region(self):
        system, _ = build_system()
        us = system.world.by_code["US"]
        outsider = system.create_peer(country=us, uploads_enabled=True)
        outsider.boot()
        assert outsider.network_region != "eu"
        spec = RegionPartition("part", start=0.0, duration=60.0, region="eu")
        injector = FaultInjector(system, (spec,), seed=3)
        injector.arm()
        system.run(until=30.0)
        eu = [p for p in system.all_peers if p.network_region == "eu"]
        assert eu and all(not p.channel.reachable for p in eu)
        assert outsider.channel.reachable
        system.run(until=120.0)
        assert all(p.channel.reachable for p in system.all_peers)


class TestDNWipeDuringChurnStorm:
    """RE-ADD repopulation racing a storm of disconnects."""

    def test_directory_recovers_despite_churning_responders(self):
        system, obj = build_system(n_peers=16)
        system.run(until=10.0)
        regs_before = system.control.total_registrations()
        assert regs_before >= 16

        storm = PeerChurnStorm("storm", start=300.0, duration=900.0,
                               fraction=0.5, downtime=(60.0, 240.0))
        wipe = DNWipe("wipe", start=600.0, re_add=True)  # mid-storm
        injector = FaultInjector(system, (storm, wipe), seed=5)
        injector.arm()

        # run past the storm and every churned peer's return
        system.run(until=3000.0)
        # every online peer answered RE-ADD or re-registered on its
        # come-back login; nobody is stuck degraded
        online = [p for p in system.all_peers if p.online]
        assert online
        assert system.control.total_registrations() >= len(online)
        assert all(p.channel.state != DEGRADED for p in online)
        rec = injector.recoveries["wipe"]
        assert rec.re_add_convergence is not None

    def test_compound_run_is_deterministic(self):
        def run_once():
            system, _ = build_system(n_peers=16)
            storm = PeerChurnStorm("storm", start=300.0, duration=900.0,
                                   fraction=0.5, downtime=(60.0, 240.0))
            wipe = DNWipe("wipe", start=600.0, re_add=True)
            injector = FaultInjector(system, (storm, wipe), seed=5)
            injector.arm()
            system.run(until=3000.0)
            return (system.control.total_registrations(),
                    system.channel_stats.as_dict(),
                    [str(e) for e in injector.timeline])

        assert run_once() == run_once()


class TestSoftStateExpiryRacingPartition:
    """A partition blocks the refresh that would renew the soft state:
    registrations must expire (the DN side is honest) and then come back
    once the partition heals and the breaker probes reconnect everyone."""

    def test_registrations_expire_then_recover(self):
        ttl = 900.0
        config = SystemConfig().with_control_plane(registration_ttl=ttl)
        system, obj = build_system(config=config, n_peers=8)
        system.run(until=10.0)
        assert system.control.total_registrations() >= 8

        # partition the whole fleet across the hourly expiry sweep: every
        # refresh fails, breakers trip, and the sweep reaps the directory
        heal_t = 2 * HOUR
        spec = RegionPartition("cut", start=60.0, duration=heal_t - 60.0)
        injector = FaultInjector(system, (spec,), seed=9)
        injector.arm()
        system.run(until=HOUR + 600.0)  # mid-partition, past the sweep
        assert system.control.total_registrations() == 0
        degraded = [p for p in system.all_peers if p.channel.state == DEGRADED]
        assert degraded  # refreshes failed into the breaker

        # heal: probes reconnect, logins re-register the cached objects
        probe = system.config.channel.probe_interval
        system.run(until=heal_t + probe + ttl)
        assert all(p.channel.state != DEGRADED
                   for p in system.all_peers if p.online)
        assert system.control.total_registrations() >= sum(
            1 for p in system.all_peers if p.online)
        assert system.channel_stats.recoveries >= len(degraded)
