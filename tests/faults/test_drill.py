"""Tests for the drill harness, the CLI path, and the fault-matrix sweep."""

from __future__ import annotations

import pytest

from repro.experiments import exp_fault_matrix
from repro.faults import run_drill
from repro.workload import ScenarioConfig, run_scenario
from repro.workload.scenario import PopulationConfig
from repro.workload.catalog import CatalogConfig
from repro.workload.demand import DemandConfig
from repro.faults.scenarios import build_scenario


class TestDrill:
    def test_blackout_drill_tells_the_full_story(self):
        report = run_drill("control_plane_blackout", seed=42)
        during = report.wave_stats("during")
        # Started mid-blackout: no CN anywhere, so every download is
        # edge-only — and still completes (§3.8 fallback).
        assert during["completion_rate"] == 1.0
        assert during["edge_only"] == during["downloads"]
        assert during["mean_peer_fraction"] == 0.0
        # Before recovery completes and after it, the swarm carries weight.
        assert report.wave_stats("before")["mean_peer_fraction"] > 0.2
        after = report.wave_stats("after")
        assert after["completion_rate"] == 1.0
        assert after["mean_peer_fraction"] > 0.2
        rec = report.recoveries[0]
        assert rec.connected_dip > 0
        assert rec.time_to_reconnect is not None
        assert rec.re_add_convergence is not None

    def test_report_text_is_byte_identical_across_runs(self):
        a = run_drill("control_plane_blackout", seed=42)
        b = run_drill("control_plane_blackout", seed=42)
        assert a.text == b.text
        assert a.text  # non-empty, renderable

    def test_different_seeds_differ(self):
        a = run_drill("cn_flap", seed=1)
        b = run_drill("cn_flap", seed=2)
        assert a.text != b.text

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_drill("meteor_strike")

    def test_wave_stats_empty_wave(self):
        report = run_drill("dn_wipe", seed=3)
        assert report.wave_stats("nonexistent")["downloads"] == 0


class TestWorkloadIntegration:
    def test_scenario_config_carries_faults(self):
        cfg = ScenarioConfig(
            seed=7,
            duration_days=1.0,
            population=PopulationConfig(n_peers=120),
            demand=DemandConfig(total_downloads=80, duration_days=1.0),
            catalog=CatalogConfig(objects_per_provider=8),
            faults=build_scenario("dn_wipe", at=6 * 3600.0, duration=3600.0),
        )
        result = run_scenario(cfg)
        assert result.injector is not None
        assert result.injector.pending == 0
        assert any(e.phase == "applied" for e in result.injector.timeline)

    def test_no_faults_no_injector(self):
        cfg = ScenarioConfig(
            seed=7,
            duration_days=0.5,
            population=PopulationConfig(n_peers=60),
            demand=DemandConfig(total_downloads=30, duration_days=0.5),
            catalog=CatalogConfig(objects_per_provider=8),
        )
        result = run_scenario(cfg)
        assert result.injector is None


class TestFaultMatrix:
    def test_small_matrix_meets_the_paper_story(self):
        out = exp_fault_matrix.run("small", 42)
        assert out.text and out.metrics
        # A healthy baseline, per the §5.2 outcome numbers.
        assert out.metrics["baseline_completed"] >= 0.9
        # The blackout must visibly hurt: lower completion in the fault
        # window, or more downloads falling back to edge-only delivery.
        blackout_worse = (
            out.metrics["control_plane_blackout_completion_delta"] < 0
            or out.metrics["control_plane_blackout_fallback_delta"] > 0
        )
        assert blackout_worse

    def test_matrix_is_cached_per_scale_and_seed(self):
        a = exp_fault_matrix.run("small", 42)
        b = exp_fault_matrix.run("small", 42)
        assert a.text == b.text


class TestDrillJSON:
    def test_as_json_round_trips_and_is_deterministic(self):
        import json

        def one():
            report = run_drill("cn_flap", 5, fault_duration=900.0,
                               horizon=2 * 3600.0)
            return json.dumps(report.as_json(), sort_keys=True)

        first, second = one(), one()
        assert first == second
        data = json.loads(first)
        assert data["scenario"] == "cn_flap"
        assert data["seed"] == 5
        assert set(data["waves"]) == {"before", "during", "after"}
        for stats in data["waves"].values():
            assert {"downloads", "completed", "completion_rate",
                    "edge_only", "mean_peer_fraction"} <= set(stats)
        assert data["recoveries"]  # the flap recovered
        # the channel block carries the §3.8 robustness counters
        assert "breaker_trips" in data["channel"]
        assert "degraded_seconds" in data["channel"]
        assert "mean_time_to_recover" in data["channel"]

    def test_lossy_scenario_reports_channel_damage(self):
        report = run_drill("control_message_loss", 3, fault_duration=1200.0,
                           horizon=2 * 3600.0)
        assert report.channel["lost_messages"] > 0
        assert report.channel["retries"] > 0
        assert "control-channel robustness" in report.text
