"""Tests for the injector engine: scheduling, determinism, monitoring."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.faults import (
    CNOutage, ControlPlaneBlackout, DNWipe, FaultInjector, LinkDegradation,
    PeerChurnStorm, build_scenario, scenario_names,
)
from repro.faults.injector import INJECTOR_GUID

HOUR = 3600.0


def build_system(seed=17, n_peers=12):
    system = NetSessionSystem(seed=seed)
    provider = ContentProvider(cp_code=1, name="P")
    obj = ContentObject("f.bin", 200 * 1024 * 1024, provider, p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    for _ in range(n_peers):
        p = system.create_peer(country=country, uploads_enabled=True)
        p.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
        p.boot()
    return system, obj


SPECS = (
    CNOutage("outage", start=100.0, duration=300.0, fraction=0.5),
    DNWipe("wipe", start=200.0),
    LinkDegradation("deg", start=400.0, duration=600.0, fraction=0.4),
    PeerChurnStorm("storm", start=500.0, duration=300.0, fraction=0.3),
)


class TestArming:
    def test_duplicate_names_rejected(self):
        system, _ = build_system()
        with pytest.raises(ValueError, match="duplicate"):
            FaultInjector(system, (DNWipe("x", start=0.0), DNWipe("x", start=9.0)))

    def test_double_arm_rejected(self):
        system, _ = build_system()
        injector = FaultInjector(system, SPECS)
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_specs_sorted_by_start_then_name(self):
        system, _ = build_system()
        injector = FaultInjector(system, reversed(SPECS))
        assert [s.name for s in injector.specs] == ["outage", "wipe", "deg", "storm"]

    def test_pending_counts_down(self):
        system, _ = build_system()
        injector = FaultInjector(system, SPECS)
        injector.arm()
        assert injector.pending == 4
        system.run(until=250.0)
        assert injector.pending == 2
        system.run(until=HOUR)
        assert injector.pending == 0


class TestTimeline:
    def test_apply_and_revert_recorded_in_order(self):
        system, _ = build_system()
        injector = FaultInjector(system, SPECS)
        injector.arm()
        system.run(until=2 * HOUR)
        phases = [(e.fault, e.phase) for e in injector.timeline]
        # At t=400 the degradation's apply (scheduled at arm time) fires
        # before the outage's revert (scheduled later, at apply time):
        # same-time events run in scheduling order.
        assert phases == [
            ("outage", "applied"),
            ("wipe", "applied"),        # instantaneous: no revert entry
            ("deg", "applied"),
            ("outage", "reverted"),
            ("storm", "applied"),
            ("storm", "reverted"),      # no-op revert, still recorded
            ("deg", "reverted"),
        ]
        times = [e.time for e in injector.timeline]
        assert times == sorted(times)

    def test_lifecycle_reported_to_monitoring(self):
        system, _ = build_system()
        injector = FaultInjector(system, SPECS)
        injector.arm()
        system.run(until=2 * HOUR)
        mon = system.control.monitoring
        assert mon.counts["fault-applied"] == 4
        assert mon.counts["fault-reverted"] == 3
        assert any(r.guid == INJECTOR_GUID for r in mon.recent)

    def test_timeline_text_is_one_line_per_event(self):
        system, _ = build_system()
        injector = FaultInjector(system, SPECS)
        injector.arm()
        system.run(until=2 * HOUR)
        lines = injector.timeline_text().splitlines()
        assert len(lines) == len(injector.timeline)
        assert "applied" in lines[0] and "outage" in lines[0]


class TestDeterminism:
    def run_timeline(self, seed, injector_seed, specs=None):
        system, obj = build_system(seed=seed)
        downloader = system.create_peer(
            country=system.world.by_code["DE"], uploads_enabled=True)
        downloader.boot()
        system.sim.schedule_at(50.0, lambda: downloader.start_download(obj))
        injector = FaultInjector(
            system, specs if specs is not None else SPECS, seed=injector_seed)
        injector.arm()
        system.run(until=3 * HOUR)
        return injector

    def test_same_seed_identical_timeline_and_recoveries(self):
        a = self.run_timeline(17, 5)
        b = self.run_timeline(17, 5)
        assert a.timeline == b.timeline
        assert a.timeline_text() == b.timeline_text()
        for name in a.recoveries:
            ra, rb = a.recoveries[name], b.recoveries[name]
            assert (ra.pre_connected, ra.post_connected) == \
                   (rb.pre_connected, rb.post_connected)
            assert ra.time_to_reconnect == rb.time_to_reconnect
            assert ra.re_add_convergence == rb.re_add_convergence

    def test_adding_a_fault_does_not_perturb_other_victims(self):
        # Per-fault string-seeded RNGs: the degradation picks the same
        # victims whether or not an unrelated fault runs alongside it.
        deg = LinkDegradation("deg", start=400.0, duration=600.0, fraction=0.4)
        alone = self.run_timeline(17, 5, specs=(deg,))
        extra = (DNWipe("wipe", start=200.0), deg)
        together = self.run_timeline(17, 5, specs=extra)
        dip_alone = alone.recoveries["deg"]
        dip_together = together.recoveries["deg"]
        assert dip_alone.applied_at == dip_together.applied_at


class TestScenarioLibrary:
    def test_every_scenario_builds_and_validates(self):
        for name in scenario_names():
            specs = build_scenario(name, at=100.0, duration=600.0)
            assert specs
            assert all(s.start >= 100.0 for s in specs)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            build_scenario("meteor_strike")

    def test_every_scenario_runs_against_a_live_system(self):
        for name in scenario_names():
            system, _ = build_system()
            injector = FaultInjector(
                system, build_scenario(name, at=60.0, duration=300.0))
            injector.arm()
            system.run(until=HOUR)
            assert injector.pending == 0
            assert injector.timeline
