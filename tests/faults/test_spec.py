"""Tests for the declarative fault model: validation, RNG, apply/revert."""

from __future__ import annotations

import random

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.faults import (
    CNOutage, ControlPlaneBlackout, DNWipe, EdgeBrownout, FlakyUploader,
    InjectionContext, LinkDegradation, NATRebind, PeerChurnStorm,
)
from repro.faults.spec import FaultSpec

HOUR = 3600.0


def build_system(seed=11, n_peers=10):
    system = NetSessionSystem(seed=seed)
    provider = ContentProvider(cp_code=1, name="P")
    obj = ContentObject("f.bin", 100 * 1024 * 1024, provider, p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    for _ in range(n_peers):
        p = system.create_peer(country=country, uploads_enabled=True)
        p.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
        p.boot()
    return system, obj


def ctx_for(system, spec, seed=0):
    return InjectionContext(system=system, rng=spec.make_rng(seed))


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CNOutage("", start=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            CNOutage("x", start=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CNOutage("x", start=0.0, duration=-5.0)

    def test_churn_storm_needs_duration(self):
        with pytest.raises(ValueError):
            PeerChurnStorm("storm", start=0.0, duration=0.0)

    def test_churn_storm_invalid_downtime_rejected(self):
        with pytest.raises(ValueError):
            PeerChurnStorm("storm", start=0.0, duration=60.0,
                           downtime=(300.0, 30.0))

    def test_flaky_corruption_prob_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FlakyUploader("flaky", start=0.0, corruption_prob=1.5)

    def test_instantaneous_and_end(self):
        spec = DNWipe("wipe", start=100.0)
        assert spec.instantaneous
        assert spec.end == 100.0
        held = CNOutage("out", start=100.0, duration=50.0)
        assert not held.instantaneous
        assert held.end == 150.0


class TestRNG:
    def test_rng_is_stable_per_seed_and_name(self):
        spec = CNOutage("a", start=0.0)
        assert spec.make_rng(7).random() == spec.make_rng(7).random()

    def test_rng_differs_across_names(self):
        a = CNOutage("a", start=0.0).make_rng(7)
        b = CNOutage("b", start=0.0).make_rng(7)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_rng_differs_across_seeds(self):
        spec = CNOutage("a", start=0.0)
        assert spec.make_rng(1).random() != spec.make_rng(2).random()

    def test_select_is_deterministic(self):
        system, _ = build_system()
        spec = LinkDegradation("deg", start=0.0, fraction=0.5)
        picked1 = ctx_for(system, spec).select(system.all_peers, 0.5)
        picked2 = ctx_for(system, spec).select(system.all_peers, 0.5)
        assert picked1 == picked2
        assert len(picked1) == 5

    def test_select_at_least_one(self):
        system, _ = build_system()
        ctx = ctx_for(system, LinkDegradation("deg", start=0.0))
        assert len(ctx.select(system.all_peers, 0.001)) == 1
        assert ctx.select(system.all_peers, 0.0) == []
        assert ctx.select([], 0.5) == []


class TestRevertSymmetry:
    """apply() then revert() restores the pre-fault state exactly."""

    def test_cn_outage(self):
        system, _ = build_system()
        spec = CNOutage("out", start=0.0, duration=60.0, fraction=0.5)
        ctx = ctx_for(system, spec)
        alive_before = [cn.alive for cn in system.control.all_cns]
        token = spec.apply(ctx)
        assert any(not cn.alive for cn in system.control.all_cns)
        spec.revert(ctx, token)
        assert [cn.alive for cn in system.control.all_cns] == alive_before

    def test_control_plane_blackout(self):
        system, _ = build_system()
        spec = ControlPlaneBlackout("blackout", start=0.0, duration=60.0)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        assert not any(cn.alive for cn in system.control.all_cns)
        assert not any(dn.alive for dn in system.control.all_dns)
        spec.revert(ctx, token)
        assert all(cn.alive for cn in system.control.all_cns)
        assert all(dn.alive for dn in system.control.all_dns)
        # Stranded peers reconnect once the rate-limited schedule drains.
        system.run(until=system.sim.now + 60.0)
        assert system.control.connected_peer_count() == len(system.all_peers)

    def test_dn_wipe_durational(self):
        system, _ = build_system()
        region = system.all_peers[0].network_region
        spec = DNWipe("wipe", start=0.0, duration=60.0, region=region)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        assert not any(dn.alive for dn in system.control.dns_by_region[region])
        spec.revert(ctx, token)
        assert all(dn.alive for dn in system.control.dns_by_region[region])
        # RE-ADD on revert repopulated the directory immediately.
        assert system.control.total_registrations() > 0

    def test_edge_brownout(self):
        system, _ = build_system()
        spec = EdgeBrownout("brown", start=0.0, duration=60.0,
                            capacity_factor=0.1)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        assert all(s.browned_out for s in token)
        assert token  # the selector picked at least one server
        spec.revert(ctx, token)
        assert not any(s.browned_out for s in system.edge.servers_in(None))

    def test_link_degradation(self):
        system, _ = build_system()
        caps_before = [(p.link.down_bps, p.link.up_bps) for p in system.all_peers]
        spec = LinkDegradation("deg", start=0.0, duration=60.0, fraction=0.5)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        assert all(p.link.degraded for p in token)
        spec.revert(ctx, token)
        caps_after = [(p.link.down_bps, p.link.up_bps) for p in system.all_peers]
        assert caps_after == caps_before

    def test_nat_rebind_durational_restores_profiles(self):
        system, _ = build_system()
        profiles_before = [p.nat_profile for p in system.all_peers]
        spec = NATRebind("rebind", start=0.0, duration=60.0, fraction=1.0)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        assert all(p.nat_rebinds == 1 for p in system.all_peers)
        spec.revert(ctx, token)
        assert [p.nat_profile for p in system.all_peers] == profiles_before

    def test_nat_rebind_instantaneous_is_permanent(self):
        system, _ = build_system()
        spec = NATRebind("rebind", start=0.0, duration=0.0, fraction=1.0)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        rebound = [p.nat_profile for p in system.all_peers]
        spec.revert(ctx, token)
        assert [p.nat_profile for p in system.all_peers] == rebound

    def test_flaky_uploader(self):
        system, _ = build_system()
        spec = FlakyUploader("flaky", start=0.0, duration=60.0,
                             fraction=0.5, corruption_prob=0.25)
        ctx = ctx_for(system, spec)
        token = spec.apply(ctx)
        assert all(p.piece_corruption_prob == 0.25 for p, _ in token)
        spec.revert(ctx, token)
        assert all(p.piece_corruption_prob == old for p, old in token)

    def test_churn_storm_peers_return(self):
        system, _ = build_system()
        spec = PeerChurnStorm("storm", start=0.0, duration=120.0,
                              fraction=0.5, downtime=(10.0, 30.0))
        ctx = ctx_for(system, spec)
        spec.apply(ctx)
        system.run(until=60.0)
        assert any(not p.online for p in system.all_peers)
        system.run(until=300.0)
        assert all(p.online for p in system.all_peers)


class TestBaseClass:
    def test_apply_is_abstract(self):
        with pytest.raises(NotImplementedError):
            FaultSpec("x", start=0.0).apply(None)

    def test_describe_mentions_kind_and_timing(self):
        text = CNOutage("x", start=30.0, duration=60.0).describe()
        assert "CNOutage" in text and "30" in text and "60" in text
        assert "instant" in DNWipe("y", start=0.0).describe()
