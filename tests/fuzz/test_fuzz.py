"""Tests for the strict-invariant scenario fuzzer.

The fast tier checks the machinery (determinism, shrinking, reproducer
round-trip) on a couple of seeds; the actual bug-hunting sweep is marked
``fuzz`` and runs in its own CI job.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.adversary.profiles import PROFILES
from repro.fuzz import (
    FuzzSpec, generate, reproducer_script, run_seeds, run_spec, shrink,
)

SMOKE_SEEDS = (0, 1, 2)

#: Seeds the CI sweep covers; REPRO_FUZZ_JOBS widens the worker pool.
SWEEP_SEEDS = range(30)


class TestGenerate:
    def test_same_seed_same_spec(self):
        assert generate(7) == generate(7)

    def test_different_seeds_differ(self):
        specs = {generate(s) for s in range(20)}
        assert len(specs) == 20

    def test_specs_within_bounds(self):
        for seed in range(50):
            spec = generate(seed)
            assert 2 <= spec.n_seeders <= 14
            assert 2 <= spec.n_downloaders <= 14
            assert 1 <= spec.n_objects <= 3
            assert 2.0 <= spec.duration_hours <= 10.0
            assert spec.fault_at < 0.4 * spec.duration_hours * 3600.0
            assert spec.adversary_fraction in (0.0, 0.15, 0.3)
            assert spec.adversary_profile in (None,) + PROFILES

    def test_label_mentions_the_seed(self):
        assert "seed=9" in generate(9).label()


class TestRunSpec:
    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_smoke_seeds_run_clean(self, seed):
        result = run_spec(generate(seed))
        assert result.ok, f"{result.spec.label()}: {result.failure}"
        assert result.completed_downloads > 0

    def test_same_seed_same_outcome(self):
        spec = generate(1)
        a, b = run_spec(spec), run_spec(spec)
        assert a.completed_downloads == b.completed_downloads
        assert a.warnings == b.warnings

    def test_numpy_kernel_smoke_seed_runs_clean(self):
        spec = dataclasses.replace(generate(0), kernel="numpy")
        result = run_spec(spec)
        assert result.ok, f"{result.spec.label()}: {result.failure}"
        assert result.completed_downloads > 0

    def test_kernels_agree_on_fuzzed_scenario(self):
        # The kernel is a pure solver swap: every observable outcome of a
        # whole fuzzed run must be identical under both.
        spec = generate(2)
        a = run_spec(dataclasses.replace(spec, kernel="python"))
        b = run_spec(dataclasses.replace(spec, kernel="numpy"))
        assert a.ok and b.ok
        assert a.completed_downloads == b.completed_downloads
        assert a.warnings == b.warnings

    def test_adversarial_smoke_holds_strict_invariants(self):
        # An infested swarm with the defense engaged must stay invariant-
        # clean: quarantine eviction, reputation bounds, accounting
        # conservation all hold while adversaries actively misbehave.
        spec = dataclasses.replace(
            generate(0), adversary_fraction=0.15, defense=True)
        result = run_spec(spec)
        assert result.ok, f"{result.spec.label()}: {result.failure}"
        assert result.completed_downloads > 0

    def test_device_smoke_holds_strict_invariants(self):
        # A heterogeneous-tier mini-scenario (router-heavy mix: uplink
        # caps, cache budgets, class-driven sessions) must stay clean
        # under strict invariants, device-budget checker included.
        spec = dataclasses.replace(generate(0), device_mix="router_heavy")
        result = run_spec(spec)
        assert result.ok, f"{result.spec.label()}: {result.failure}"
        assert result.completed_downloads > 0

    def test_device_knob_is_seed_stable(self):
        # device_mix draws last: toggling its fuzzability must not move
        # any older field of the same seed (the pre-device byte streams).
        for seed in SMOKE_SEEDS:
            spec = generate(seed)
            assert spec.device_mix in (
                "off", "balanced", "router_heavy", "mobile_heavy")
            off = dataclasses.replace(spec, device_mix="off")
            assert off.label() == spec.label()

    def test_adversary_knobs_are_orthogonal_to_honest_runs(self):
        # Toggling the defense on a fully honest spec must not perturb the
        # simulation: the reputation layer only *observes* honest traffic.
        spec = dataclasses.replace(generate(1), adversary_fraction=0.0)
        a = run_spec(dataclasses.replace(spec, defense=False))
        b = run_spec(dataclasses.replace(spec, defense=True))
        assert a.ok and b.ok
        assert a.completed_downloads == b.completed_downloads
        assert a.warnings == b.warnings


class TestShrink:
    def test_shrinks_to_fixed_point(self):
        # Synthetic oracle: "fails" whenever the fault scenario is present,
        # so everything else should shrink away around it.
        spec = generate(3)
        spec = dataclasses.replace(spec, fault_scenario="cn_flap",
                                   churn_events=4, pause_resume_events=4)
        shrunk = shrink(
            spec, still_fails=lambda s: s.fault_scenario is not None)
        assert shrunk.fault_scenario == "cn_flap"
        assert shrunk.churn_events == 0
        assert shrunk.pause_resume_events == 0
        assert shrunk.n_objects == 1
        assert shrunk.n_downloaders == 2
        assert shrunk.n_seeders == 2
        assert shrunk.object_mb == 16
        assert shrunk.duration_hours == 2.0

    def test_unshrinkable_spec_returned_unchanged(self):
        spec = FuzzSpec(seed=0, n_seeders=2, n_downloaders=2, object_mb=16,
                        n_objects=1, duration_hours=2.0)
        assert shrink(spec, still_fails=lambda s: True) == spec

    def test_shrinks_adversaries_away_first(self):
        # An adversarial slice that is irrelevant to the failure must
        # vanish from the reproducer: shrink offers fraction=0/defense=off
        # early, so the oracle keeps the minimal honest scenario.
        spec = dataclasses.replace(
            generate(3), adversary_fraction=0.3,
            adversary_profile="corrupter", defense=True,
            fault_scenario="cn_flap")
        shrunk = shrink(
            spec, still_fails=lambda s: s.fault_scenario is not None)
        assert shrunk.adversary_fraction == 0.0
        assert shrunk.adversary_profile is None
        assert shrunk.defense is False

    def test_shrinks_device_mix_to_all_desktop(self):
        # A device mix irrelevant to the failure must leave the
        # reproducer: shrink offers device_mix="off" early, so the oracle
        # keeps the minimal homogeneous (all-desktop) scenario.
        spec = dataclasses.replace(
            generate(3), device_mix="mobile_heavy", fault_scenario="cn_flap")
        shrunk = shrink(
            spec, still_fails=lambda s: s.fault_scenario is not None)
        assert shrunk.device_mix == "off"

    def test_attempt_budget_respected(self):
        calls = []

        def oracle(s):
            calls.append(s)
            return True

        shrink(generate(4), still_fails=oracle, max_attempts=5)
        assert len(calls) <= 5


class TestReproducer:
    def test_script_round_trips_through_exec(self):
        spec = generate(2)
        script = reproducer_script(spec)
        # The script re-raises on failure; a clean seed prints and returns.
        namespace = {"__name__": "__repro_fuzz_check__"}
        exec(compile(script, "<reproducer>", "exec"), namespace)
        assert namespace["result"].ok

    def test_script_embeds_every_field(self):
        spec = generate(5)
        script = reproducer_script(spec)
        for name in ("seed", "fault_scenario", "channel_loss", "every_events"):
            assert name in script


class TestRunSeeds:
    def test_order_and_parity_across_jobs(self):
        serial = run_seeds([5, 6], jobs=1)
        pooled = run_seeds([5, 6], jobs=2)
        assert [r.spec for r in serial] == [r.spec for r in pooled]
        assert ([r.completed_downloads for r in serial]
                == [r.completed_downloads for r in pooled])
        assert [r.warnings for r in serial] == [r.warnings for r in pooled]


@pytest.mark.fuzz
def test_fuzz_sweep():
    """The CI sweep: every seed must hold all invariants under strict mode.

    Seeds fan out across a process pool (``REPRO_FUZZ_JOBS``, default
    serial); results come back in seed order, so the first failure
    reported is the same at any width.  Shrinking the failure stays
    serial — each step depends on the previous verdict — and the
    assertion message carries the shrunk spec plus a standalone
    reproducer, so the finding is actionable straight from the CI log.
    """
    jobs = int(os.environ.get("REPRO_FUZZ_JOBS", "1"))
    results = run_seeds(list(SWEEP_SEEDS), jobs=jobs)
    for result in results:
        if not result.ok:
            shrunk = shrink(result.spec)
            pytest.fail(
                f"invariant violation: {result.failure}\n"
                f"spec: {result.spec.label()}\n"
                f"shrunk: {shrunk!r}\n\n{reproducer_script(shrunk)}")
        assert result.completed_downloads > 0, result.spec.label()
