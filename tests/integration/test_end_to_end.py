"""End-to-end invariants over a full synthetic trace."""

from __future__ import annotations

import pytest

from repro.analysis import (
    build_traffic_matrix, figure6_efficiency_vs_peers, mobility_summary,
    offload_summary, reliability_outcomes, table1_overall_statistics,
)
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig, run_scenario,
)


@pytest.fixture(scope="module")
def result():
    cfg = ScenarioConfig(
        seed=13, duration_days=2.0,
        population=PopulationConfig(n_peers=350),
        catalog=CatalogConfig(objects_per_provider=20),
        demand=DemandConfig(total_downloads=420, duration_days=2.0),
    )
    return run_scenario(cfg)


class TestRecordConsistency:
    def test_bytes_never_exceed_size(self, result):
        for rec in result.logstore.downloads:
            assert rec.total_bytes <= rec.size * 1.01 + 1

    def test_completed_downloads_got_all_bytes(self, result):
        for rec in result.logstore.completed_downloads():
            assert rec.total_bytes == rec.size

    def test_per_uploader_sums_to_peer_bytes(self, result):
        for rec in result.logstore.downloads:
            assert sum(rec.per_uploader_bytes.values()) == rec.peer_bytes

    def test_durations_non_negative(self, result):
        for rec in result.logstore.downloads:
            assert rec.ended_at >= rec.started_at

    def test_infra_only_records_have_no_peer_bytes(self, result):
        for rec in result.logstore.downloads:
            if not rec.p2p_enabled:
                assert rec.peer_bytes == 0
                assert rec.peers_initially_returned == 0

    def test_all_download_ips_geolocated(self, result):
        for rec in result.logstore.downloads:
            if rec.ip:
                assert result.geodb.get(rec.ip) is not None


class TestAccountingConsistency:
    def test_no_honest_report_rejected(self, result):
        # The standard population has no attackers: everything validates.
        assert result.system.accounting.rejected == []

    def test_edge_logs_cover_claimed_edge_bytes(self, result):
        edge = result.system.edge
        for rec in result.logstore.completed_downloads():
            trusted = edge.trusted_bytes_served(rec.guid, rec.cid)
            assert trusted >= rec.edge_bytes * 0.98 - 1024

    def test_billing_totals_match_accepted_reports(self, result):
        acc = result.system.accounting
        billed = sum(s.total_bytes for s in acc.billing.values())
        reported = sum(r.claimed_edge_bytes + r.claimed_peer_bytes
                       for r in acc.accepted)
        assert billed == reported


class TestUploaderDiscipline:
    def test_uploaders_had_uploads_enabled_or_were_registered(self, result):
        registered = {r.guid for r in result.logstore.registrations}
        for rec in result.logstore.downloads:
            for uploader in rec.per_uploader_bytes:
                assert uploader in registered

    def test_upload_budget_respected(self, result):
        cap = result.system.config.client.max_uploads_per_object
        for peer in result.population.peers:
            for cid, count in peer.uploads_done.items():
                assert count <= cap


class TestHeadlineShapes:
    def test_offload_in_plausible_band(self, result):
        summary = offload_summary(result.logstore)
        # Shape: the majority of peer-assisted bytes come from peers.
        assert summary.byte_weighted_efficiency > 0.4

    def test_efficiency_grows_with_candidates(self, result):
        rows = figure6_efficiency_vs_peers(result.logstore)
        low = [eff for k, eff, n in rows if k == 0]
        high = [eff for k, eff, n in rows if k >= 5 and n > 0]
        if low and high:
            assert max(high) > low[0]

    def test_p2p_downloads_pause_more(self, result):
        outcomes = reliability_outcomes(result.logstore)
        assert (outcomes["peer_assisted"]["aborted"]
                >= outcomes["infrastructure"]["aborted"])

    def test_more_ips_than_guids(self, result):
        stats = table1_overall_statistics(result.logstore, result.geodb)
        assert stats.distinct_ips > stats.guids

    def test_mobility_mostly_single_as(self, result):
        summary = mobility_summary(result.logstore, result.geodb)
        assert summary.one_as > 0.6
        assert summary.one_as + summary.two_as + summary.more_as == pytest.approx(1.0)

    def test_traffic_matrix_resolves_most_bytes(self, result):
        matrix = build_traffic_matrix(result.logstore, result.geodb)
        total_peer = sum(r.peer_bytes for r in result.logstore.downloads)
        if total_peer:
            assert matrix.total_bytes >= 0.9 * total_peer
