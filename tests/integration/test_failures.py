"""Failure injection across the full system (§3.8 robustness)."""

from __future__ import annotations

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry

HOUR = 3600.0


def build_busy_system(seed=31, seeders=8):
    system = NetSessionSystem(seed=seed)
    provider = ContentProvider(cp_code=1, name="P")
    obj = ContentObject("f.bin", 500 * 1024 * 1024, provider, p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    for _ in range(seeders):
        s = system.create_peer(country=country, uploads_enabled=True)
        s.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
        s.boot()
    downloader = system.create_peer(country=country, uploads_enabled=True)
    downloader.boot()
    return system, obj, downloader


class TestCNFailureMidDownload:
    def test_download_completes_through_cn_crash(self):
        system, obj, downloader = build_busy_system()
        session = downloader.start_download(obj)
        system.run(until=20.0)
        system.control.fail_cn(downloader.cn)
        system.run(until=12 * HOUR)
        assert session.state == "completed"

    def test_peer_reconnects_to_another_cn(self):
        system, obj, downloader = build_busy_system()
        old_cn = downloader.cn
        system.control.fail_cn(old_cn)
        system.run(until=system.sim.now + 120.0)
        assert downloader.cn is not None
        assert downloader.cn is not old_cn


class TestDNFailureMidDownload:
    def test_directory_recovers_and_serves_new_downloads(self):
        system, obj, downloader = build_busy_system()
        region = downloader.network_region
        dn = system.control.dns_by_region[region][0]
        assert dn.copy_count(obj.cid) > 0
        system.control.fail_dn(dn)
        assert dn.copy_count(obj.cid) > 0  # RE-ADD repopulated
        session = downloader.start_download(obj)
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes > 0


class TestTotalControlPlaneOutage:
    def test_downloads_fall_back_to_edge(self):
        system, obj, downloader = build_busy_system()
        for cn in system.control.all_cns:
            cn.fail()
        downloader.reconnect()  # finds nothing
        assert downloader.cn is None
        session = downloader.start_download(obj)
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        assert session.peer_bytes == 0

    def test_new_peer_boots_without_control_plane(self):
        system, obj, _downloader = build_busy_system()
        for cn in system.control.all_cns:
            cn.fail()
        newcomer = system.create_peer()
        newcomer.boot()
        assert newcomer.online
        assert newcomer.cn is None


class TestAccountingAttack:
    def test_attacker_filtered_but_service_unaffected(self):
        system, obj, downloader = build_busy_system()
        downloader.accounting_attacker = True
        session = downloader.start_download(obj)
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        assert len(system.accounting.rejected) == 1
        assert system.accounting.rejected[0][1] in ("edge-mismatch", "oversized")
        billed = system.accounting.provider_report(obj.provider.cp_code)
        assert billed.total_bytes == 0  # nothing billed from the attacker

    def test_honest_peer_unaffected_by_attacker_presence(self):
        system, obj, downloader = build_busy_system()
        downloader.accounting_attacker = True
        downloader.start_download(obj)
        country = system.world.by_code["DE"]
        honest = system.create_peer(country=country, uploads_enabled=True)
        honest.boot()
        session = honest.start_download(obj)
        system.run(until=12 * HOUR)
        assert session.state == "completed"
        assert len(system.accounting.accepted) == 1
