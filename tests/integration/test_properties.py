"""Property-based end-to-end tests: invariants over randomized swarms.

Hypothesis drives randomized (but bounded) hybrid-download scenes and
checks the conservation laws that must hold regardless of swarm
composition, link speeds, NAT luck, or churn timing.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ContentObject, ContentProvider, NetSessionSystem, SystemConfig
from repro.core.peer import CacheEntry

MB = 1024 * 1024
HOUR = 3600.0

scene = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=10_000),
    "size_mb": st.integers(min_value=8, max_value=900),
    "seeders": st.integers(min_value=0, max_value=18),
    "p2p_enabled": st.booleans(),
    "churn_at": st.one_of(st.none(), st.floats(min_value=5.0, max_value=600.0)),
})


def run_scene(params):
    system = NetSessionSystem(seed=params["seed"])
    provider = ContentProvider(cp_code=1, name="P")
    obj = ContentObject("x.bin", params["size_mb"] * MB, provider,
                        p2p_enabled=params["p2p_enabled"])
    system.publish(obj)
    country = system.world.by_code["DE"]
    seeders = []
    for _ in range(params["seeders"]):
        s = system.create_peer(country=country, uploads_enabled=True)
        s.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
        s.boot()
        seeders.append(s)
    downloader = system.create_peer(country=country, uploads_enabled=True)
    downloader.boot()
    session = downloader.start_download(obj)
    if params["churn_at"] is not None and seeders:
        for s in seeders[::2]:
            system.sim.schedule(params["churn_at"], s.go_offline)
    system.run(until=30 * HOUR)
    return system, obj, downloader, session


class TestSwarmInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scene)
    def test_conservation_and_termination(self, params):
        system, obj, downloader, session = run_scene(params)

        # 1. The download terminates (no deadlocks) given ample time.
        assert session.state == "completed", session.state

        # 2. Byte conservation: useful bytes equal the object size exactly.
        assert session.edge_bytes + session.peer_bytes == obj.size

        # 3. Attribution: per-uploader bytes sum to the peer total and only
        #    name real peers.
        assert sum(session.per_uploader_bytes.values()) == session.peer_bytes
        for guid in session.per_uploader_bytes:
            assert guid in system.peer_by_guid

        # 4. Edge truth: trusted edge logs cover what the session counted.
        trusted = system.edge.trusted_bytes_served(downloader.guid, obj.cid)
        assert trusted >= session.edge_bytes

        # 5. No p2p bytes when p2p is off for the object.
        if not obj.p2p_enabled:
            assert session.peer_bytes == 0

        # 6. The completed copy is cached and (uploads on) registered.
        assert downloader.has_complete(obj.cid)

        # 7. Upload slot accounting returned to zero everywhere.
        for peer in system.all_peers:
            assert peer.active_upload_count == 0
            assert not peer.upload_flows

        # 8. Exactly one download record, consistent with the session.
        records = [r for r in system.logstore.downloads
                   if r.guid == downloader.guid]
        assert len(records) == 1
        assert records[0].peer_bytes == session.peer_bytes
        assert records[0].outcome == "completed"

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scene, pause_at=st.floats(min_value=2.0, max_value=120.0))
    def test_pause_resume_preserves_conservation(self, params, pause_at):
        system = NetSessionSystem(seed=params["seed"])
        provider = ContentProvider(cp_code=1, name="P")
        obj = ContentObject("x.bin", params["size_mb"] * MB, provider,
                            p2p_enabled=params["p2p_enabled"])
        system.publish(obj)
        country = system.world.by_code["DE"]
        for _ in range(params["seeders"]):
            s = system.create_peer(country=country, uploads_enabled=True)
            s.cache[obj.cid] = CacheEntry(obj.cid, 0.0)
            s.boot()
        downloader = system.create_peer(country=country, uploads_enabled=True)
        downloader.boot()
        session = downloader.start_download(obj)
        system.sim.schedule(pause_at, session.pause)
        system.sim.schedule(pause_at + 600.0, session.resume)
        system.run(until=30 * HOUR)
        assert session.state == "completed"
        assert session.edge_bytes + session.peer_bytes == obj.size
        assert len(session.received) == obj.num_pieces
