"""Tests for the audit layer's machinery: modes, cadence, dedup, stats."""

from __future__ import annotations

import pytest

from repro.core import NetSessionSystem
from repro.core.config import InvariantConfig, SystemConfig
from repro.invariants import (
    CHECKERS, InvariantViolation, InvariantViolationError, checker_names,
)


def make_system(mode="observe", **inv):
    config = SystemConfig(invariants=InvariantConfig(mode=mode, **inv))
    return NetSessionSystem(config, seed=7)


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            InvariantConfig(mode="aggressive")
        with pytest.raises(ValueError):
            InvariantConfig(every_events=0)
        with pytest.raises(ValueError):
            InvariantConfig(max_violations=0)

    def test_auto_resolves_via_env(self, monkeypatch):
        cfg = InvariantConfig()
        monkeypatch.delenv("REPRO_INVARIANTS", raising=False)
        assert cfg.resolve_mode() == "observe"
        monkeypatch.setenv("REPRO_INVARIANTS", "strict")
        assert cfg.resolve_mode() == "strict"
        monkeypatch.setenv("REPRO_INVARIANTS", "OFF")
        assert cfg.resolve_mode() == "off"
        monkeypatch.setenv("REPRO_INVARIANTS", "banana")
        assert cfg.resolve_mode() == "observe"

    def test_explicit_mode_ignores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "off")
        assert InvariantConfig(mode="strict").resolve_mode() == "strict"

    def test_with_invariants_helper(self):
        cfg = SystemConfig().with_invariants(mode="strict", every_events=10)
        assert cfg.invariants.mode == "strict"
        assert cfg.invariants.every_events == 10
        # Other sections untouched.
        assert cfg.client == SystemConfig().client

    def test_unknown_checker_selection_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant checkers"):
            make_system(checkers=("flow-feasibility", "nonsense"))

    def test_checker_subset_selection(self):
        system = make_system(checkers=("flow-feasibility",))
        assert [c.name for c in system.auditor._all] == ["flow-feasibility"]


class TestRegistry:
    def test_builtin_checkers_registered(self):
        names = checker_names()
        for expected in ("flow-feasibility", "byte-conservation",
                         "directory-consistency", "nat-symmetry",
                         "sim-time", "sim-heap", "channel-state",
                         "edge-log-reconciliation", "accounting-ledger"):
            assert expected in names

    def test_final_only_split(self):
        assert CHECKERS["edge-log-reconciliation"].final_only
        assert CHECKERS["accounting-ledger"].final_only
        assert CHECKERS["sim-heap"].final_only
        assert not CHECKERS["flow-feasibility"].final_only

    def test_duplicate_registration_rejected(self):
        from repro.invariants import register_checker

        with pytest.raises(ValueError, match="duplicate"):
            register_checker("flow-feasibility", "dup")(lambda s, r: None)


class TestCadence:
    def test_off_mode_installs_no_hook(self):
        system = make_system(mode="off")
        assert system.sim._audit_hook is None
        assert system.audit() == []
        assert system.auditor.stats().final_audits == 0

    def test_sampled_audit_fires_on_event_cadence(self):
        system = make_system(every_events=10)
        for i in range(35):
            system.sim.schedule(float(i + 1), lambda: None)
        system.run(until=100.0)
        assert system.auditor.audits == 3  # 35 events, every 10

    def test_audit_hook_validation(self):
        from repro.net.sim import SimulationError, Simulator

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.set_audit_hook(lambda: None, every_events=0)
        sim.set_audit_hook(lambda: None, every_events=5)
        sim.clear_audit_hook()
        assert sim._audit_hook is None

    def test_audit_hook_runs_after_flow_flush(self):
        # The hook must observe settled rates: after an event that starts a
        # flow, the batched mutation is flushed before the audit fires.
        from repro.net.flows import Resource

        system = make_system(every_events=1)
        res = Resource("audit-test", 100.0)
        seen = []
        orig = system.auditor._sampled_audit

        def spy():
            seen.append((len(system.flows._dirty),
                         sum(f.rate for f in res.flows)))
            orig()

        system.sim.set_audit_hook(spy, every_events=1)
        system.sim.schedule(
            1.0, lambda: system.flows.start_flow([res], size=1e9))
        system.run(until=2.0)
        assert seen[0] == (0, 100.0)  # settled, not pending


class TestRecording:
    def test_dedup_and_counting(self):
        system = make_system()
        auditor = system.auditor
        auditor._record("flow-feasibility", "error", "resource:x", "boom")
        system.sim._now = 5.0
        auditor._record("flow-feasibility", "error", "resource:x", "boom again")
        assert len(auditor.violations) == 1
        v = next(iter(auditor.violations.values()))
        assert v.count == 2
        assert v.first_seen == 0.0 and v.last_seen == 5.0
        assert v.detail == "boom"  # first occurrence wins

    def test_cap_drops_distinct_overflow(self):
        system = make_system(max_violations=3)
        for i in range(10):
            system.auditor._record("sim-time", "warning", f"s{i}", "d")
        assert len(system.auditor.violations) == 3
        assert system.auditor.dropped == 7

    def test_report_orders_errors_first(self):
        system = make_system()
        system.auditor._record("a", "warning", "w1", "d")
        system.auditor._record("b", "error", "e1", "d")
        report = system.auditor.report()
        assert [v.severity for v in report] == ["error", "warning"]

    def test_violation_str_and_as_dict(self):
        v = InvariantViolation("x", "error", "s", "bad", 1.0, 9.0, count=3)
        assert "x" in str(v) and "x3" in str(v)
        d = v.as_dict()
        assert d["count"] == 3 and d["severity"] == "error"


class TestStrictMode:
    def test_strict_raises_on_error(self):
        system = make_system(mode="strict")
        with pytest.raises(InvariantViolationError, match="boom"):
            system.auditor._record("flow-feasibility", "error", "r", "boom")
        # Recorded before raising, so the report survives the exception.
        assert system.auditor.error_count() == 1

    def test_strict_records_warnings_without_raising(self):
        system = make_system(mode="strict")
        system.auditor._record("directory-consistency", "warning", "s", "drift")
        assert system.auditor.warning_count() == 1

    def test_strict_violation_propagates_out_of_run(self):
        # A corruption visible to the *sampled* audit aborts run() itself.
        from repro.net.flows import Resource

        system = make_system(mode="strict", every_events=1)
        res = Resource("r", 100.0)
        flows = []
        system.sim.schedule(
            1.0,
            lambda: flows.append(system.flows.start_flow([res], size=1e12)))

        def corrupt():
            flows[0].rate = 400.0  # overdrive behind the allocator's back

        system.sim.schedule(2.0, corrupt)
        with pytest.raises(InvariantViolationError):
            system.run(until=10.0)
        assert system.auditor.error_count() >= 1

    def test_observe_records_instead_of_raising(self):
        system = make_system(mode="observe")
        system.sim._live += 7
        violations = system.audit(final=True)
        assert any(v.subject == "heap:live-counter" for v in violations)


class TestStatsPlumbing:
    def test_inv_keys_in_system_stats(self):
        system = make_system()
        system.audit(final=True)
        stats = system.stats().as_dict()
        assert stats["inv_mode"] == "observe"
        assert stats["inv_final_audits"] == 1
        assert stats["inv_checks"] == len(CHECKERS)
        for key in ("inv_violations", "inv_errors", "inv_warnings",
                    "inv_dropped", "inv_violation_occurrences"):
            assert key in stats

    def test_clean_system_audits_clean(self, system):
        assert system.audit(final=True) == []

    def test_render_audit_includes_violations(self):
        from repro.analysis.report import render_audit

        system = make_system()
        system.auditor._record("sim-time", "error", "clock", "went backwards")
        audit = {
            **system.auditor.stats().as_dict(),
            "violations": [v.as_dict() for v in system.auditor.report()],
        }
        text = render_audit("invariant audit", audit)
        assert "went backwards" in text
        assert "invariant violations" in text
