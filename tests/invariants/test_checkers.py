"""Per-checker tests: each corruption is caught with the right subject.

Every test builds a small live system, breaks one specific law behind the
bookkeeping's back, and asserts the matching checker reports it — the
sanitizer analogue of "does ASan catch this exact overflow".
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis.records import DownloadRecord
from repro.core.config import InvariantConfig, SystemConfig
from repro.core.content import ContentObject, ContentProvider
from repro.core.control.channel import DEGRADED, PROBING, RETRYING
from repro.core.peer import CacheEntry
from repro.core.system import NetSessionSystem
from repro.net.flows import Resource
from repro.workload.devices import DeviceClass, DeviceMixConfig

MB = 1024 * 1024


def bare_system():
    """An empty observe-mode system (no peers, no content)."""
    return NetSessionSystem(
        SystemConfig(invariants=InvariantConfig(mode="observe")), seed=11)


def live_system(*, until=300.0):
    """A seeder plus one mid-flight download, stopped at ``until``.

    Returns ``(system, downloader, obj)`` with the download still active,
    so tests can corrupt a live session / DN entry / channel.
    """
    system = bare_system()
    provider = ContentProvider(cp_code=9001, name="Chk")
    obj = ContentObject("chk/a.bin", 512 * MB, provider, p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    seeder = system.create_peer(country=country, uploads_enabled=True)
    seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
    seeder.boot()
    peer = system.create_peer(country=country, uploads_enabled=True)
    peer.boot()
    system.sim.schedule(60.0, lambda: peer.start_download(obj))
    system.run(until=until)
    return system, peer, obj


def subjects(violations, invariant):
    return {v.subject for v in violations if v.invariant == invariant}


def dn_entry(system):
    """The first DN registration entry (the seeder's replica)."""
    for dn in system.control.all_dns:
        for entries in dn.table.values():
            for entry in entries.values():
                return dn, entry
    raise AssertionError("no DN registration found")


class TestFlowFeasibility:
    def test_clean_flows_pass(self):
        system = bare_system()
        res = Resource("r", 100.0)
        system.flows.start_flow([res], size=1e9)
        assert system.audit(final=False) == []

    def test_allocated_counter_drift(self):
        system = bare_system()
        res = Resource("r", 100.0)
        system.flows.start_flow([res], size=1e9)
        system.flows.flush()
        res.allocated += 50.0
        assert "resource:r" in subjects(
            system.audit(final=False), "flow-feasibility")

    def test_transferred_exceeds_size(self):
        system = bare_system()
        res = Resource("r", 100.0)
        flow = system.flows.start_flow([res], size=1e9)
        system.flows.flush()
        flow.transferred = 2e9
        assert f"flow:{flow.flow_id}" in subjects(
            system.audit(final=False), "flow-feasibility")

    def test_active_flow_missing_from_member_set(self):
        system = bare_system()
        res = Resource("r", 100.0)
        flow = system.flows.start_flow([res], size=1e9)
        system.flows.flush()
        res.flows.discard(flow)
        assert f"flow:{flow.flow_id}" in subjects(
            system.audit(final=False), "flow-feasibility")

    def test_inactive_flow_still_attached(self):
        system = bare_system()
        res = Resource("r", 100.0)
        flow = system.flows.start_flow([res], size=1e9)
        system.flows.flush()
        flow.active = False  # leaked: done but never detached
        violations = system.audit(final=False)
        assert any("inactive flow" in v.detail for v in violations)


class TestByteConservation:
    def test_credited_bytes_drift(self):
        system, peer, obj = live_system()
        session = peer.sessions[obj.cid]
        session.edge_bytes += 1
        found = subjects(system.audit(final=False), "byte-conservation")
        assert f"session:{peer.guid[:8]}/{obj.cid}" in found

    def test_per_uploader_sum_mismatch(self):
        system, peer, obj = live_system()
        peer.sessions[obj.cid].per_uploader_bytes["phantom"] = 123
        violations = system.audit(final=False)
        assert any("per-uploader sum" in v.detail for v in violations)

    def test_completed_short_of_object_size(self):
        system, peer, obj = live_system()
        peer.sessions[obj.cid].state = "completed"
        violations = system.audit(final=False)
        assert any("completed with" in v.detail for v in violations)


class TestDirectoryConsistency:
    def test_unknown_guid(self):
        system, _, _ = live_system()
        for dn in system.control.all_dns:
            for entries in dn.table.values():
                if entries:
                    entries["f" * 32] = next(iter(entries.values()))
                    break
        violations = system.audit(final=False)
        assert any("unknown GUID" in v.detail for v in violations)

    def test_invalid_nat_reported(self):
        system, _, _ = live_system()
        _, entry = dn_entry(system)
        entry.nat_reported = "carrier-pigeon"
        violations = system.audit(final=False)
        assert any("invalid nat_reported" in v.detail for v in violations)

    def test_future_refresh_timestamp(self):
        system, _, _ = live_system()
        _, entry = dn_entry(system)
        entry.refreshed_at = system.sim.now + 999.0
        violations = system.audit(final=False)
        assert any("in the future" in v.detail for v in violations)

    def test_entry_outlives_ttl_and_sweep(self):
        system, _, _ = live_system()
        dn, entry = dn_entry(system)
        entry.registered_at = entry.refreshed_at = (
            system.sim.now - dn.registration_ttl - 3700.0)
        violations = system.audit(final=False)
        assert any("outlived TTL" in v.detail for v in violations)

    def test_evicted_replica_is_warning_not_error(self):
        system, _, obj = live_system()
        # Evict the seeder's replica without an unregister landing.
        seeder = next(p for p in system.all_peers if obj.cid in p.cache)
        seeder.cache.pop(obj.cid)
        violations = system.audit(final=False)
        drift = [v for v in violations if "evicted replica" in v.detail]
        assert drift and all(v.severity == "warning" for v in drift)


class TestNatSymmetry:
    def test_malformed_profile_types(self):
        system, peer, _ = live_system()
        peer.nat_profile = SimpleNamespace(
            true_type="open", reported_type="open")
        found = subjects(system.audit(final=False), "nat-symmetry")
        assert f"peer:{peer.guid[:8]}" in found


class TestSimTime:
    def test_clock_backwards(self):
        system, _, _ = live_system()
        system.auditor._last_audit_now = system.sim.now + 50.0
        assert "clock" in subjects(system.audit(final=False), "sim-time")

    def test_pending_event_in_the_past(self):
        import heapq

        system, _, _ = live_system()
        heapq.heappush(
            system.sim._queue, (10.0, 0, SimpleNamespace(pending=True)))
        violations = system.audit(final=False)
        assert "event:t=10.000" in subjects(violations, "sim-time")

    def test_live_counter_corruption_caught_at_final(self):
        system, _, _ = live_system()
        system.sim._live += 7
        violations = system.audit(final=True)
        assert "heap:live-counter" in subjects(violations, "sim-heap")


class TestChannelState:
    def test_unknown_state(self):
        system, peer, _ = live_system()
        peer.channel.state = "hibernating"
        violations = system.audit(final=False)
        assert any("unknown state" in v.detail for v in violations)

    def test_probing_at_event_boundary(self):
        system, peer, _ = live_system()
        peer.channel.state = PROBING
        violations = system.audit(final=False)
        assert any("PROBING" in v.detail for v in violations)

    def test_offline_peer_channel_not_reset(self):
        system, peer, _ = live_system()
        peer.go_offline()
        peer.channel.state = RETRYING
        violations = system.audit(final=False)
        assert any("not reset" in v.detail for v in violations)

    def test_degraded_without_bookkeeping(self):
        system, peer, _ = live_system()
        peer.channel.state = DEGRADED  # none of the DEGRADED obligations hold
        violations = system.audit(final=False)
        # Several broken obligations share the channel subject, so they
        # dedup into one violation counting each occurrence.
        v = next(v for v in violations if "degraded_since" in v.detail)
        assert v.count >= 3  # since unset, CN still held, no probe

    def test_failures_beyond_breaker_threshold(self):
        system, peer, _ = live_system()
        ch = peer.channel
        ch.consecutive_failures = ch.cfg.breaker_threshold
        violations = system.audit(final=False)
        assert any("tripped the breaker" in v.detail for v in violations)


class TestDeviceBudget:
    def _mix(self):
        router = DeviceClass(name="smartrouter", share=1.0,
                             uplink_cap_bps=1000.0, cache_objects=2)
        return router, DeviceMixConfig(classes=(router,))

    def test_device_free_system_is_skipped(self):
        # No declared mix: the checker must not second-guess a
        # homogeneous population (goldens depend on this).
        system, peer, _ = live_system()
        assert subjects(system.audit(final=False), "device-budget") == set()

    def test_flow_exceeding_the_tier_cap(self):
        system, peer, _ = live_system()
        router, mix = self._mix()
        system.device_mix = mix
        # Retroactively declare the live uploader a smartrouter: its
        # in-flight flow was capped at the raw link rate, far above the
        # tier's 1 kB/s budget.
        uploader = next(p for p in system.all_peers if p.upload_flows)
        uploader.device = router
        assert f"device:{uploader.guid[:8]}" in subjects(
            system.audit(final=False), "device-budget")

    def test_cache_over_the_tier_budget(self):
        system, peer, _ = live_system()
        router, mix = self._mix()
        system.device_mix = mix
        peer.device = router
        for i in range(3):  # budget is 2
            peer.cache[f"stuffed/{i}"] = CacheEntry(
                cid=f"stuffed/{i}", completed_at=0.0)
        assert f"device:{peer.guid[:8]}" in subjects(
            system.audit(final=False), "device-budget")

    def test_class_outside_the_declared_mix(self):
        system, peer, _ = live_system()
        _, mix = self._mix()
        system.device_mix = mix
        peer.device = DeviceClass(name="toaster", share=1.0)
        violations = system.audit(final=False)
        assert f"device:{peer.guid[:8]}" in subjects(
            violations, "device-budget")
        assert any("toaster" in v.detail for v in violations)

    def test_compliant_tier_passes(self):
        system, peer, _ = live_system()
        router, mix = self._mix()
        system.device_mix = mix
        peer.device = router  # downloader: no upload flows, small cache
        assert subjects(system.audit(final=False), "device-budget") == set()


class TestFinalReconciliation:
    def _completed_system(self):
        system, peer, obj = live_system(until=20_000.0)
        system.finalize_open_downloads()
        assert any(r.outcome == "completed" for r in system.logstore.downloads)
        return system, peer, obj

    def test_clean_run_reconciles(self):
        system, _, _ = self._completed_system()
        assert system.audit(final=True) == []

    def test_record_claims_unserved_edge_bytes(self):
        system, peer, obj = self._completed_system()
        rec = system.logstore.downloads[0]
        rec.edge_bytes += 1  # one byte the edge never served
        violations = system.audit(final=True)
        assert any("trusted edge logs" in v.detail for v in violations)

    def test_negative_and_time_travelling_records(self):
        system, peer, obj = self._completed_system()
        system.logstore.downloads.append(DownloadRecord(
            guid=peer.guid, url=obj.url, cid=obj.cid,
            cp_code=obj.provider.cp_code, size=obj.size,
            started_at=500.0, ended_at=100.0, edge_bytes=-1, peer_bytes=0,
            p2p_enabled=True, outcome="failed"))
        violations = system.audit(final=True)
        # Both defects hit the same record subject → one deduped violation.
        v = next(v for v in violations if "negative byte count" in v.detail)
        assert v.count >= 2  # the ends-before-start occurrence merged in

    def test_billing_summary_drift(self):
        system, _, _ = self._completed_system()
        summary = system.accounting.billing[9001]
        summary.edge_bytes += 1
        found = subjects(system.audit(final=True), "accounting-ledger")
        assert any(s.startswith("ledger:cp 9001") for s in found)

    def test_upload_credit_drift(self):
        system, _, _ = self._completed_system()
        uploader = next(iter(system.accounting.upload_credit))
        system.accounting.upload_credit[uploader] += 5
        violations = system.audit(final=True)
        assert any("uploader" in v.detail for v in violations)


class TestCheckerPurity:
    def test_audit_draws_no_rng_and_schedules_nothing(self):
        system, _, _ = live_system()
        rng_state = system.rng.getstate()
        pending = system.sim.pending_count()
        system.audit(final=True)
        assert system.rng.getstate() == rng_state
        assert system.sim.pending_count() == pending
