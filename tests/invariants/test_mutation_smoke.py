"""Mutation smoke tests: a deliberately broken subsystem must be caught.

The sanitizer's reason to exist is catching bugs we *haven't* written yet,
so these tests write them on purpose: each one breaks a core component the
way a bad refactor would (an over-allocating water-filler, a double-credit
in session accounting, a breaker that forgets its bookkeeping) and asserts
the audit layer flags the run.  If one of these passes silently, the
invariant net has a hole in it.
"""

from __future__ import annotations

import pytest

import repro.core.peer as peer_mod
import repro.net.flows as flows_mod
from repro.core.config import InvariantConfig, SystemConfig
from repro.core.content import ContentObject, ContentProvider
from repro.core.peer import CacheEntry
from repro.core.system import NetSessionSystem
from repro.invariants import InvariantViolationError
from repro.net.nat import NATProfile, NATType
from repro.workload.devices import DeviceClass, DeviceMixConfig

MB = 1024 * 1024


def strict_system(seed=23):
    # The tiny workload processes only a few dozen simulator events, so
    # audit on (nearly) every event to sample the mid-download window.
    config = SystemConfig(
        invariants=InvariantConfig(mode="strict", every_events=5))
    return NetSessionSystem(config, seed=seed)


def start_workload(system, *, object_mb=256):
    provider = ContentProvider(cp_code=9100, name="MutCo")
    obj = ContentObject("mutco/blob.bin", object_mb * MB, provider,
                        p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    seeder = system.create_peer(country=country, uploads_enabled=True)
    seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
    seeder.boot()
    peer = system.create_peer(country=country, uploads_enabled=True)
    peer.boot()
    system.sim.schedule(60.0, lambda: peer.start_download(obj))
    return peer, obj


class TestBrokenFlowAllocator:
    def test_overdriving_allocator_is_caught(self, monkeypatch):
        """The headline mutation: a water-filler handing out 3x the fair
        rate violates capacity feasibility within one audit interval."""
        real = flows_mod._max_min_fair

        def broken(flows, stats=None):
            return {f: rate * 3.0 for f, rate in real(flows, stats).items()}

        monkeypatch.setattr(flows_mod, "_max_min_fair", broken)
        system = strict_system()
        start_workload(system)
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "flow-feasibility"

    def test_observe_mode_records_the_same_defect(self, monkeypatch):
        real = flows_mod._max_min_fair

        def broken(flows, stats=None):
            return {f: rate * 3.0 for f, rate in real(flows, stats).items()}

        monkeypatch.setattr(flows_mod, "_max_min_fair", broken)
        config = SystemConfig(
            invariants=InvariantConfig(mode="observe", every_events=5))
        system = NetSessionSystem(config, seed=23)
        start_workload(system)
        system.run(until=7200.0)
        system.audit(final=True)
        assert any(v.invariant == "flow-feasibility"
                   for v in system.auditor.report())


class TestBrokenSessionAccounting:
    def test_double_credited_piece_is_caught(self):
        """A session crediting bytes without holding the pieces (the shape
        of a double-delivery bug) breaks byte conservation."""
        system = strict_system()
        peer, obj = start_workload(system)

        def double_credit():
            session = peer.sessions.get(obj.cid)
            if session is not None and session.state == "active":
                session.peer_bytes += 4 * MB  # credit with no piece behind it

        system.sim.schedule(120.0, double_credit)  # mid-download
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "byte-conservation"


class TestBrokenBreaker:
    def test_breaker_that_never_trips_is_caught(self):
        """A channel accumulating failures past its threshold without
        degrading means the breaker logic regressed."""
        system = strict_system()
        peer, _ = start_workload(system)

        def wedge_failures():
            ch = peer.channel
            ch.consecutive_failures = ch.cfg.breaker_threshold + 2

        system.sim.schedule(900.0, wedge_failures)
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "channel-state"


class TestBrokenDeviceBudget:
    def _tiered_workload(self, system, cls, *, object_mb=64, n_objects=1,
                         seeder_cls=None):
        """A tiered seeder feeding one downloader of class ``cls``."""
        seeder_cls = cls if seeder_cls is None else seeder_cls
        classes = ((cls,) if seeder_cls is cls else (cls, seeder_cls))
        system.device_mix = DeviceMixConfig(classes=classes)
        provider = ContentProvider(cp_code=9101, name="DevCo")
        country = system.world.by_code["DE"]
        seeder = system.create_peer(country=country, uploads_enabled=True)
        seeder.device = seeder_cls
        # The tier's port-forwarding override (what build_population does
        # for smartrouters): the seeder must be reachable to serve p2p.
        seeder.nat_profile = NATProfile(
            true_type=NATType.OPEN, reported_type=NATType.OPEN)
        peer = system.create_peer(country=country, uploads_enabled=True)
        peer.device = cls
        objs = []
        for i in range(n_objects):
            obj = ContentObject(f"devco/blob{i}.bin", object_mb * MB,
                                provider, p2p_enabled=True)
            system.publish(obj)
            seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
            objs.append(obj)
        seeder.boot()
        peer.boot()
        for i, obj in enumerate(objs):
            system.sim.schedule(60.0 + 30.0 * i,
                                lambda o=obj: peer.start_download(o))
        return peer

    def test_cap_that_forgets_the_device_term_is_caught(self, monkeypatch):
        """The bad-refactor shape: upload_rate_cap loses the device-tier
        min().  Flows then run at the raw throttled link rate, which the
        device-budget checker recomputes and rejects mid-upload."""

        def broken(self):
            cfg = self.system.config.client
            fraction = (cfg.backoff_rate_fraction if self.link_busy
                        else cfg.upload_rate_fraction)
            return max(1.0, fraction * self.link.up_bps
                       * self.adversary_slow_factor)

        monkeypatch.setattr(peer_mod.PeerNode, "upload_rate_cap", broken)
        system = strict_system()
        router = DeviceClass(name="smartrouter", share=1.0,
                             uplink_cap_bps=1000.0)
        self._tiered_workload(system, router)
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "device-budget"

    def test_cache_that_ignores_the_budget_is_caught(self, monkeypatch):
        """An add_to_cache that forgets tier eviction lets a one-object
        tier hold two; the budget checker flags the second completion."""

        def broken(self, cid):
            # The pre-device implementation: insert, schedule expiry,
            # register — no budget eviction.
            now = self.system.sim.now
            self.cache[cid] = CacheEntry(cid=cid, completed_at=now)
            retention = self.system.config.client.cache_retention
            self.system.sim.schedule(retention, lambda: self._evict(cid))
            if self.uploads_enabled:
                self.channel.register(
                    cid, on_registered=lambda: self._mark_registered(cid))

        monkeypatch.setattr(peer_mod.PeerNode, "add_to_cache", broken)
        system = strict_system()
        tiny = DeviceClass(name="mobile", share=1.0, cache_objects=1)
        roomy = DeviceClass(name="smartrouter", share=1.0)
        downloader = self._tiered_workload(
            system, tiny, object_mb=32, n_objects=2, seeder_cls=roomy)
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=14400.0)
            system.audit(final=True)
        violation = exc.value.violation
        assert violation.invariant == "device-budget"
        assert violation.subject == f"device:{downloader.guid[:8]}"

    def test_unbroken_tiered_workload_runs_clean(self):
        """No false positives: the real cap and eviction logic hold the
        same budgets the checker recomputes."""
        system = strict_system()
        tiny = DeviceClass(name="mobile", share=1.0, cache_objects=1)
        router = DeviceClass(name="smartrouter", share=1.0,
                             uplink_cap_bps=1000.0)
        self._tiered_workload(
            system, tiny, object_mb=32, n_objects=2, seeder_cls=router)
        system.run(until=14400.0)
        system.audit(final=True)
        assert system.auditor.report() == []


class TestBrokenEventLoop:
    def test_leaked_live_counter_is_caught_at_final_audit(self):
        """An event-loop refactor that loses track of cancellations shows
        up in the end-of-run heap sweep."""
        system = strict_system()
        start_workload(system)
        system.run(until=7200.0)
        system.sim._live += 3
        with pytest.raises(InvariantViolationError) as exc:
            system.audit(final=True)
        assert exc.value.violation.invariant == "sim-heap"
