"""Mutation smoke tests: a deliberately broken subsystem must be caught.

The sanitizer's reason to exist is catching bugs we *haven't* written yet,
so these tests write them on purpose: each one breaks a core component the
way a bad refactor would (an over-allocating water-filler, a double-credit
in session accounting, a breaker that forgets its bookkeeping) and asserts
the audit layer flags the run.  If one of these passes silently, the
invariant net has a hole in it.
"""

from __future__ import annotations

import pytest

import repro.net.flows as flows_mod
from repro.core.config import InvariantConfig, SystemConfig
from repro.core.content import ContentObject, ContentProvider
from repro.core.peer import CacheEntry
from repro.core.system import NetSessionSystem
from repro.invariants import InvariantViolationError

MB = 1024 * 1024


def strict_system(seed=23):
    # The tiny workload processes only a few dozen simulator events, so
    # audit on (nearly) every event to sample the mid-download window.
    config = SystemConfig(
        invariants=InvariantConfig(mode="strict", every_events=5))
    return NetSessionSystem(config, seed=seed)


def start_workload(system, *, object_mb=256):
    provider = ContentProvider(cp_code=9100, name="MutCo")
    obj = ContentObject("mutco/blob.bin", object_mb * MB, provider,
                        p2p_enabled=True)
    system.publish(obj)
    country = system.world.by_code["DE"]
    seeder = system.create_peer(country=country, uploads_enabled=True)
    seeder.cache[obj.cid] = CacheEntry(obj.cid, completed_at=0.0)
    seeder.boot()
    peer = system.create_peer(country=country, uploads_enabled=True)
    peer.boot()
    system.sim.schedule(60.0, lambda: peer.start_download(obj))
    return peer, obj


class TestBrokenFlowAllocator:
    def test_overdriving_allocator_is_caught(self, monkeypatch):
        """The headline mutation: a water-filler handing out 3x the fair
        rate violates capacity feasibility within one audit interval."""
        real = flows_mod._max_min_fair

        def broken(flows, stats=None):
            return {f: rate * 3.0 for f, rate in real(flows, stats).items()}

        monkeypatch.setattr(flows_mod, "_max_min_fair", broken)
        system = strict_system()
        start_workload(system)
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "flow-feasibility"

    def test_observe_mode_records_the_same_defect(self, monkeypatch):
        real = flows_mod._max_min_fair

        def broken(flows, stats=None):
            return {f: rate * 3.0 for f, rate in real(flows, stats).items()}

        monkeypatch.setattr(flows_mod, "_max_min_fair", broken)
        config = SystemConfig(
            invariants=InvariantConfig(mode="observe", every_events=5))
        system = NetSessionSystem(config, seed=23)
        start_workload(system)
        system.run(until=7200.0)
        system.audit(final=True)
        assert any(v.invariant == "flow-feasibility"
                   for v in system.auditor.report())


class TestBrokenSessionAccounting:
    def test_double_credited_piece_is_caught(self):
        """A session crediting bytes without holding the pieces (the shape
        of a double-delivery bug) breaks byte conservation."""
        system = strict_system()
        peer, obj = start_workload(system)

        def double_credit():
            session = peer.sessions.get(obj.cid)
            if session is not None and session.state == "active":
                session.peer_bytes += 4 * MB  # credit with no piece behind it

        system.sim.schedule(120.0, double_credit)  # mid-download
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "byte-conservation"


class TestBrokenBreaker:
    def test_breaker_that_never_trips_is_caught(self):
        """A channel accumulating failures past its threshold without
        degrading means the breaker logic regressed."""
        system = strict_system()
        peer, _ = start_workload(system)

        def wedge_failures():
            ch = peer.channel
            ch.consecutive_failures = ch.cfg.breaker_threshold + 2

        system.sim.schedule(900.0, wedge_failures)
        with pytest.raises(InvariantViolationError) as exc:
            system.run(until=7200.0)
            system.audit(final=True)
        assert exc.value.violation.invariant == "channel-state"


class TestBrokenEventLoop:
    def test_leaked_live_counter_is_caught_at_final_audit(self):
        """An event-loop refactor that loses track of cancellations shows
        up in the end-of-run heap sweep."""
        system = strict_system()
        start_workload(system)
        system.run(until=7200.0)
        system.sim._live += 3
        with pytest.raises(InvariantViolationError) as exc:
            system.audit(final=True)
        assert exc.value.violation.invariant == "sim-heap"
