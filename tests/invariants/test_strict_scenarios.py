"""Strict-mode system tests: real scenarios must be sanitizer-clean.

Fast tier runs a representative drill subset; the full 13-scenario matrix
and the golden-parity run are ``slow`` (CI's slow job).  The parity test
is the load-bearing one: auditing must not move a single byte of the
fixed-seed experiment output, in *any* mode.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.experiments.common as common
from repro.core.config import InvariantConfig
from repro.faults.drill import run_drill
from repro.faults.scenarios import scenario_names
from repro.workload import run_scenario

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

STRICT = InvariantConfig(mode="strict")

#: Fast-tier subset: the §3.8 blackout, the soft-state-heavy upgrade
#: (exercises the warning path under strict), and the kitchen sink.
FAST_SCENARIOS = ("control_plane_blackout", "rolling_upgrade", "perfect_storm")


def assert_strict_clean(name):
    # Strict mode raises on the first error, so merely returning is the
    # assertion; the explicit check guards the counters too.
    report = run_drill(name, 42, invariants=STRICT)
    assert report.invariants["mode"] == "strict"
    assert report.invariants["errors"] == 0
    assert report.invariants["final_audits"] == 1


@pytest.mark.parametrize("name", FAST_SCENARIOS)
def test_strict_drill_clean_fast_subset(name):
    assert_strict_clean(name)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", [n for n in scenario_names() if n not in FAST_SCENARIOS])
def test_strict_drill_clean_full_matrix(name):
    assert_strict_clean(name)


def test_rolling_upgrade_warnings_do_not_fail_strict():
    # The upgrade leaves stale CN connected-table entries behind — the
    # tolerated soft-state drift the severity model exists for.
    report = run_drill("rolling_upgrade", 42, invariants=STRICT)
    assert report.invariants["errors"] == 0
    assert report.invariants["warnings"] > 0


@pytest.mark.slow
def test_strict_golden_parity(monkeypatch):
    """exp_table1/exp_fig4 output is byte-identical under strict auditing."""
    from repro.experiments import exp_fig4, exp_table1

    import dataclasses

    config = common.standard_config("small", 42)
    strict_config = dataclasses.replace(
        config, system=config.system.with_invariants(mode="strict"))
    result = run_scenario(strict_config)
    assert result.system.auditor.mode == "strict"
    assert result.system.auditor.error_count() == 0
    # Serve the strict-mode run to the experiment renderers: inject it into
    # the artifact store under the *standard* config's fingerprint, so the
    # renderers' lookups hit it (a deliberate cache poisoning — the point
    # is that strict auditing must not have moved a byte).
    from repro.runner import artifact_from_result, fingerprint_config

    fp = fingerprint_config(config)
    monkeypatch.setitem(common._ARTIFACTS, fp,
                        artifact_from_result(result, fingerprint=fp))
    for module, golden in ((exp_table1, "exp_table1_small_seed42.txt"),
                           (exp_fig4, "exp_fig4_small_seed42.txt")):
        expected = (GOLDEN_DIR / golden).read_text()
        assert module.run("small", 42).text == expected
