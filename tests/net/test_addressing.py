"""Tests for IP allocation and geo registration."""

from __future__ import annotations

import random

import pytest

from repro.net.addressing import IPAllocator
from repro.net.geo import GeoDatabase, build_core_world
from repro.net.topology import build_topology


@pytest.fixture
def setup():
    world = build_core_world()
    topology = build_topology(world, random.Random(1))
    geodb = GeoDatabase()
    allocator = IPAllocator(geodb, random.Random(2))
    country = world.by_code["DE"]
    asys = topology.eyeball_ases("DE")[0]
    return geodb, allocator, country, asys


class TestAllocation:
    def test_addresses_are_unique(self, setup):
        geodb, allocator, country, asys = setup
        city = country.cities[0]
        ips = {allocator.assign(asys, country, city) for _ in range(300)}
        assert len(ips) == 300

    def test_every_address_registered_in_geodb(self, setup):
        geodb, allocator, country, asys = setup
        ip = allocator.assign(asys, country, country.cities[0])
        rec = geodb.lookup(ip)
        assert rec.country_code == "DE"
        assert rec.asn == asys.asn
        assert rec.network == asys.name

    def test_coordinates_jittered_near_city(self, setup):
        geodb, allocator, country, asys = setup
        city = country.cities[0]
        for _ in range(30):
            ip = allocator.assign(asys, country, city)
            rec = geodb.lookup(ip)
            assert abs(rec.lat - city.lat) <= 0.06
            assert abs(rec.lon - city.lon) <= 0.06

    def test_jitter_produces_multiple_locations_per_city(self, setup):
        geodb, allocator, country, asys = setup
        city = country.cities[0]
        locs = set()
        for _ in range(60):
            ip = allocator.assign(asys, country, city)
            rec = geodb.lookup(ip)
            locs.add((rec.lat, rec.lon))
        assert len(locs) > 5  # suburb granularity, not one point

    def test_assigned_count_tracks_per_as(self, setup):
        geodb, allocator, country, asys = setup
        assert allocator.assigned_count(asys.asn) == 0
        for _ in range(5):
            allocator.assign(asys, country, country.cities[0])
        assert allocator.assigned_count(asys.asn) == 5

    def test_as_prefix_identifiable(self, setup):
        geodb, allocator, country, asys = setup
        ip = allocator.assign(asys, country, country.cities[0])
        hi, lo = divmod(asys.asn, 256)
        assert ip.startswith(f"10.{hi}.{lo}.")

    def test_overflow_past_256_hosts(self, setup):
        geodb, allocator, country, asys = setup
        ips = [allocator.assign(asys, country, country.cities[0]) for _ in range(300)]
        assert len(set(ips)) == 300
        assert any(ip.count(".") == 4 for ip in ips)  # extended form used
