"""Batched settlement vs the reference per-mutation engine.

The batched engine (``FlowNetwork(batching=True)``, the default) defers
settlement of same-timestamp mutation bursts to one pass per simulator
event; the reference engine settles after every mutation.  Within a
timestamp no simulated time passes, so the two must produce *identical*
trajectories — these tests assert that, exactly, over randomized
workloads, and pin the golden-seed experiment output.
"""

from __future__ import annotations

import random

import pytest

from repro.net.flows import FlowNetwork, Resource
from repro.net.sim import Simulator

MBPS = 1e6 / 8.0


# ------------------------------------------------------- randomized parity


def _build_schedule(seed: int, n_peers: int = 24, n_events: int = 50):
    """A deterministic mutation schedule, independent of either engine.

    The schedule is pure data — (time, ops) with flows referenced by the
    order they were started — so applying it cannot entangle the RNG
    stream with engine behaviour.
    """
    rng = random.Random(seed)
    links = [
        (rng.uniform(4.0, 40.0) * MBPS, rng.uniform(0.5, 4.0) * MBPS)
        for _ in range(n_peers)
    ]
    events = []
    t = 0.0
    started = 0
    for _ in range(n_events):
        t += rng.uniform(0.5, 25.0)
        ops = []
        for _ in range(rng.randrange(1, 8)):
            draw = rng.random()
            if draw < 0.55 or started == 0:
                down = rng.randrange(n_peers)
                up = rng.randrange(n_peers)
                if up == down:
                    up = (up + 1) % n_peers
                ops.append(("start", down, up, rng.uniform(1e6, 6e7)))
                started += 1
            elif draw < 0.75:
                ops.append(("abort", rng.randrange(started)))
            elif draw < 0.9:
                ops.append(("cap", rng.randrange(started),
                            rng.uniform(0.2, 8.0) * MBPS))
            else:
                down = rng.randrange(n_peers)
                ops.append(("degrade", down,
                            rng.uniform(0.2, 1.0) * links[down][0]))
        events.append((t, ops))
    return links, events


def _run_engine(links, events, *, batching: bool):
    sim = Simulator()
    net = FlowNetwork(sim, batching=batching)
    downs = [Resource(f"p{i}/down", d) for i, (d, _) in enumerate(links)]
    ups = [Resource(f"p{i}/up", u) for i, (_, u) in enumerate(links)]
    flows: list = []

    def apply(ops) -> None:
        for op in ops:
            if op[0] == "start":
                _, down, up, size = op
                flows.append(net.start_flow((downs[down], ups[up]), size))
            elif op[0] == "abort":
                net.abort_flow(flows[op[1]])
            elif op[0] == "cap":
                net.set_cap(flows[op[1]], op[2])
            else:
                net.set_resource_capacity(downs[op[1]], op[2])

    for t, ops in events:
        sim.schedule_at(t, lambda ops=ops: apply(ops))
    sim.run()
    return net, [(f.start_time, f.end_time, f.transferred, f.active)
                 for f in flows]


@pytest.mark.parametrize("seed", range(6))
def test_randomized_schedules_identical(seed):
    """Same schedule, both engines: identical per-flow trajectories.

    Floats are compared at rel=1e-9: settling a burst as one union
    water-filling can reassociate the same sums the reference computes
    component-by-component, which moves results by a couple of ulp.
    The byte-identical guarantee on *rendered* experiment output is
    pinned separately in ``tests/test_golden_parity.py``.
    """
    links, events = _build_schedule(seed)
    net_b, flows_b = _run_engine(links, events, batching=True)
    net_r, flows_r = _run_engine(links, events, batching=False)

    assert len(flows_b) == len(flows_r)
    for got, want in zip(flows_b, flows_r):
        b_start, b_end, b_transferred, b_active = got
        r_start, r_end, r_transferred, r_active = want
        assert b_active == r_active
        assert b_start == r_start
        if r_end is None:
            assert b_end is None
        else:
            assert b_end == pytest.approx(r_end, rel=1e-9)
        assert b_transferred == pytest.approx(r_transferred, rel=1e-9)
    assert net_b.completed_count == net_r.completed_count
    assert net_b.aborted_count == net_r.aborted_count
    # Batching must not *increase* settlement work.
    assert net_b.stats.waterfill_calls <= net_r.stats.waterfill_calls


def test_burst_settles_once_per_event():
    """One event's worth of mutations costs one settlement, not N."""
    links, _ = _build_schedule(0, n_peers=8)
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)

    def burst():
        for _ in range(10):
            net.start_flow([shared], 1e9)

    sim.schedule_at(1.0, burst)
    sim.run(until=2.0)
    assert net.stats.mutations == 10
    assert net.stats.reallocations == 1


def test_reference_settles_per_mutation():
    sim = Simulator()
    net = FlowNetwork(sim, batching=False)
    shared = Resource("shared", 100.0)

    def burst():
        for _ in range(10):
            net.start_flow([shared], 1e9)

    sim.schedule_at(1.0, burst)
    sim.run(until=2.0)
    assert net.stats.reallocations == 10


# ------------------------------------------------------------ batch() / flush


def test_batch_context_defers_settlement():
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)
    with net.batch():
        flows = [net.start_flow([shared], 1e6) for _ in range(5)]
        # Inside the batch nothing has settled yet.
        assert net.stats.reallocations == 0
        assert all(f.rate == 0.0 for f in flows)
    assert net.stats.reallocations == 1
    assert all(f.rate == pytest.approx(20.0) for f in flows)


def test_outside_event_settles_immediately():
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)
    flow = net.start_flow([shared], 1e6)
    assert flow.rate == pytest.approx(100.0)
    assert net.stats.reallocations == 1


def test_flush_on_read_inside_event():
    """An in-event reader can force settlement with an explicit flush()."""
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)
    seen = []

    def burst():
        f = net.start_flow([shared], 1e9)
        net.flush()
        seen.append(f.rate)

    sim.schedule_at(1.0, burst)
    sim.run(until=2.0)
    assert seen == [pytest.approx(100.0)]


def test_nested_batches_settle_at_outermost_exit():
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)
    with net.batch():
        net.start_flow([shared], 1e6)
        with net.batch():
            net.start_flow([shared], 1e6)
        assert net.stats.reallocations == 0
    assert net.stats.reallocations == 1


# ------------------------------------------------------------- incrementals


def test_utilization_matches_recomputed_sum():
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)
    flows = [net.start_flow([shared], 1e9, cap=float(10 * (i + 1)))
             for i in range(3)]
    net.set_cap(flows[0], 5.0)
    net.abort_flow(flows[2])
    expected = sum(f.rate for f in shared.flows) / 100.0
    assert shared.utilization == pytest.approx(expected)
    assert shared.allocated == pytest.approx(sum(f.rate for f in shared.flows))


def test_utilization_zero_after_all_flows_end():
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 100.0)
    flow = net.start_flow([shared], 1e6)
    net.abort_flow(flow)
    assert shared.allocated == 0.0
    assert shared.utilization == 0.0


def test_heap_skips_unchanged_rates():
    """Mutating one capped flow must not re-push the whole component."""
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 1000.0)
    for _ in range(20):
        net.start_flow([shared], 1e9, cap=10.0)
    pushes_before = net.stats.heap_pushes
    # A new capped flow below fair share leaves the others' rates alone.
    net.start_flow([shared], 1e9, cap=10.0)
    assert net.stats.heap_pushes == pushes_before + 1
    assert net.stats.heap_skips >= 20


def test_heap_compaction_bounds_stale_entries():
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    shared = Resource("shared", 1000.0)
    flows = [net.start_flow([shared], 1e12) for _ in range(80)]
    # Repeated cap churn re-rates every flow, staling old heap entries.
    for round_ in range(20):
        for f in flows:
            net.set_cap(f, 1.0 + (round_ % 7))
    assert net.stats.heap_compactions > 0
    # The heap stays compact relative to total pushes.
    assert len(net._completions) < net.stats.heap_pushes


def test_completion_burst_settles_in_one_pass():
    """Flows finishing at the same instant settle (and fire) together."""
    sim = Simulator()
    net = FlowNetwork(sim, batching=True)
    done = []
    for i in range(4):
        res = Resource(f"r{i}", 100.0)
        net.start_flow([res], 1000.0, on_complete=lambda f: done.append(sim.now))
    settles_before = net.stats.reallocations
    sim.run()
    assert done == [pytest.approx(10.0)] * 4
    assert net.completed_count == 4
    # All four same-instant completions resolved in one settlement pass.
    assert net.stats.reallocations <= settles_before + 2
