"""Tests for the fluid flow network and max-min fair allocation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.flows import Flow, FlowNetwork, Resource, _max_min_fair
from repro.net.sim import Simulator


def make_net():
    sim = Simulator()
    return sim, FlowNetwork(sim)


class TestResource:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            Resource("bad", 0.0)

    def test_unconstrained_resource_allowed(self):
        res = Resource("core", None)
        assert res.capacity is None
        assert res.utilization == 0.0

    def test_utilization_reflects_flow_rates(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        net.start_flow([res], 1000.0)
        assert res.utilization == pytest.approx(1.0)


class TestSingleFlow:
    def test_flow_gets_full_capacity(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1000.0)
        assert flow.rate == pytest.approx(100.0)

    def test_completion_time_is_size_over_rate(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        done = []
        net.start_flow([res], 1000.0, on_complete=lambda f: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_cap_limits_rate(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1000.0, cap=25.0)
        assert flow.rate == pytest.approx(25.0)

    def test_uncapped_unconstrained_flow_finishes(self):
        sim, net = make_net()
        done = []
        net.start_flow([], 1e9, on_complete=lambda f: done.append(1))
        sim.run()
        assert done == [1]

    def test_invalid_size_rejected(self):
        _sim, net = make_net()
        with pytest.raises(ValueError):
            net.start_flow([], 0.0)

    def test_invalid_cap_rejected(self):
        _sim, net = make_net()
        with pytest.raises(ValueError):
            net.start_flow([], 10.0, cap=-1.0)

    def test_transferred_bytes_equal_size_on_completion(self):
        sim, net = make_net()
        res = Resource("link", 7.0)
        flow = net.start_flow([res], 100.0)
        sim.run()
        assert flow.transferred == pytest.approx(100.0)
        assert not flow.active

    def test_average_rate(self):
        sim, net = make_net()
        res = Resource("link", 50.0)
        flow = net.start_flow([res], 500.0)
        sim.run()
        assert flow.average_rate() == pytest.approx(50.0)
        assert flow.elapsed == pytest.approx(10.0)


class TestFairSharing:
    def test_two_flows_split_evenly(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        f1 = net.start_flow([res], 1e6)
        f2 = net.start_flow([res], 1e6)
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)

    def test_capped_flow_leaves_residual_to_others(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        slow = net.start_flow([res], 1e6, cap=10.0)
        fast = net.start_flow([res], 1e6)
        assert slow.rate == pytest.approx(10.0)
        assert fast.rate == pytest.approx(90.0)

    def test_rates_rebalance_when_flow_completes(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        short = net.start_flow([res], 100.0)
        long = net.start_flow([res], 10_000.0)
        assert long.rate == pytest.approx(50.0)
        sim.run(until=3.0)  # short finishes at t=2
        assert not short.active
        assert long.rate == pytest.approx(100.0)

    def test_multi_resource_bottleneck(self):
        sim, net = make_net()
        uplink = Resource("up", 10.0)
        downlink = Resource("down", 100.0)
        flow = net.start_flow([uplink, downlink], 1e6)
        assert flow.rate == pytest.approx(10.0)

    def test_two_uploaders_one_downlink(self):
        sim, net = make_net()
        up_a = Resource("upA", 30.0)
        up_b = Resource("upB", 200.0)
        down = Resource("down", 100.0)
        fa = net.start_flow([up_a, down], 1e6)
        fb = net.start_flow([up_b, down], 1e6)
        # A frozen at its uplink 30; B gets the rest of the downlink.
        assert fa.rate == pytest.approx(30.0)
        assert fb.rate == pytest.approx(70.0)

    def test_total_never_exceeds_capacity(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flows = [net.start_flow([res], 1e6) for _ in range(7)]
        assert sum(f.rate for f in flows) <= 100.0 + 1e-6

    def test_disjoint_components_do_not_interact(self):
        sim, net = make_net()
        res_a = Resource("a", 100.0)
        res_b = Resource("b", 40.0)
        fa = net.start_flow([res_a], 1e6)
        fb = net.start_flow([res_b], 1e6)
        assert fa.rate == pytest.approx(100.0)
        assert fb.rate == pytest.approx(40.0)


class TestAbortAndRecap:
    def test_abort_keeps_transferred_bytes(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1e6)
        sim.schedule(5.0, lambda: net.abort_flow(flow))
        sim.run(until=6.0)
        assert not flow.active
        assert flow.transferred == pytest.approx(500.0)

    def test_abort_frees_capacity_for_others(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        f1 = net.start_flow([res], 1e6)
        f2 = net.start_flow([res], 1e6)
        sim.schedule(1.0, lambda: net.abort_flow(f1))
        sim.run(until=2.0)
        assert f2.rate == pytest.approx(100.0)

    def test_abort_is_idempotent(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1e6)
        net.abort_flow(flow)
        net.abort_flow(flow)
        assert net.aborted_count == 1

    def test_aborted_flow_does_not_complete(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        done = []
        flow = net.start_flow([res], 200.0, on_complete=lambda f: done.append(1))
        net.abort_flow(flow)
        sim.run()
        assert done == []

    def test_set_cap_midstream_changes_finish_time(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        done = []
        flow = net.start_flow([res], 1000.0, on_complete=lambda f: done.append(sim.now))
        sim.schedule(5.0, lambda: net.set_cap(flow, 10.0))
        sim.run()
        # 500 bytes in 5s, then 500 bytes at 10B/s = 50s more.
        assert done == [pytest.approx(55.0)]

    def test_clearing_cap_restores_fair_share(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1e6, cap=10.0)
        net.set_cap(flow, None)
        assert flow.rate == pytest.approx(100.0)

    def test_completion_counter(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        for _ in range(3):
            net.start_flow([res], 50.0)
        sim.run()
        assert net.completed_count == 3


class TestMaxMinProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        caps=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=6),
        n_flows=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_allocation_feasible_and_work_conserving(self, caps, n_flows, seed):
        """Max-min invariants: feasibility, non-negativity, and no resource
        left under-used while some flow on it could still grow."""
        import random as _random
        rng = _random.Random(seed)
        sim = Simulator()
        resources = [Resource(f"r{i}", c) for i, c in enumerate(caps)]
        flows = []
        for i in range(n_flows):
            chosen = rng.sample(resources, rng.randint(1, len(resources)))
            flow = Flow(i, tuple(chosen), 1e9, None, None, None, 0.0)
            for res in chosen:
                res.flows.add(flow)
            flows.append(flow)
        rates = _max_min_fair(set(flows))

        for f, r in rates.items():
            assert r >= 0.0
        for res in resources:
            load = sum(rates[f] for f in flows if res in f.resources)
            assert load <= res.capacity * (1 + 1e-9) + 1e-9

        # Work conservation: every flow is blocked by some saturated resource.
        for f in flows:
            saturated = False
            for res in f.resources:
                load = sum(rates[g] for g in flows if res in g.resources)
                if load >= res.capacity * (1 - 1e-6):
                    saturated = True
            assert saturated

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=20), cap=st.floats(min_value=1.0, max_value=1e6))
    def test_symmetric_flows_get_equal_shares(self, n, cap):
        res = Resource("link", cap)
        flows = []
        for i in range(n):
            flow = Flow(i, (res,), 1e12, None, None, None, 0.0)
            res.flows.add(flow)
            flows.append(flow)
        rates = _max_min_fair(set(flows))
        expected = cap / n
        for f in flows:
            assert math.isclose(rates[f], expected, rel_tol=1e-9)


class TestSnapshotAndErrors:
    def test_throughput_snapshot(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        f1 = net.start_flow([res], 1e6)
        f2 = net.start_flow([res], 1e6)
        snap = net.throughput_snapshot()
        assert set(snap) == {f1.flow_id, f2.flow_id}
        assert sum(snap.values()) == pytest.approx(100.0)

    def test_set_cap_invalid_rejected(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1e6)
        with pytest.raises(ValueError):
            net.set_cap(flow, 0.0)

    def test_set_cap_on_finished_flow_is_noop(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 100.0)
        sim.run()
        net.set_cap(flow, 1.0)  # must not raise

    def test_flow_average_rate_while_active(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        flow = net.start_flow([res], 1e6)
        sim.schedule(5.0, lambda: None)
        sim.run(until=5.0)
        # Settle hasn't happened (no reallocation), so average uses now.
        assert flow.average_rate(now=5.0) >= 0.0

    def test_many_flows_sequential_completions(self):
        sim, net = make_net()
        res = Resource("link", 100.0)
        finished = []
        for i in range(12):
            net.start_flow([res], 100.0 * (i + 1),
                           on_complete=lambda f: finished.append(f.flow_id))
        sim.run()
        assert len(finished) == 12
        assert net.completed_count == 12
        assert not net.active_flows
