"""Tests for the synthetic world and geolocation service."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.geo import (
    City, Country, GeoDatabase, GeoRecord, REGIONS, World,
    build_core_world, haversine_km,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(52.52, 13.41, 52.52, 13.41) == 0.0

    def test_known_distance_berlin_paris(self):
        d = haversine_km(52.52, 13.41, 48.86, 2.35)
        assert 850 <= d <= 930  # ~878 km

    def test_antipodal_is_half_circumference(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(20015, rel=0.01)

    @given(
        lat1=st.floats(min_value=-90, max_value=90),
        lon1=st.floats(min_value=-180, max_value=180),
        lat2=st.floats(min_value=-90, max_value=90),
        lon2=st.floats(min_value=-180, max_value=180),
    )
    def test_symmetric_and_bounded(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert d1 == pytest.approx(d2, abs=1e-6)
        assert 0.0 <= d1 <= 20016


class TestWorld:
    def test_core_world_has_all_regions(self):
        world = build_core_world()
        regions = {c.region for c in world.countries}
        assert regions == set(REGIONS)

    def test_extra_territories_pad_country_count(self):
        base = build_core_world()
        padded = build_core_world(extra_territories=197)
        assert len(padded) == len(base) + 197

    def test_padding_reaches_239(self):
        base = build_core_world()
        padded = build_core_world(extra_territories=239 - len(base))
        assert len(padded) == 239

    def test_no_duplicate_country_codes(self):
        world = build_core_world(extra_territories=100)
        codes = [c.code for c in world.countries]
        assert len(codes) == len(set(codes))

    def test_sampling_respects_weights(self):
        world = build_core_world()
        rng = random.Random(5)
        counts = {}
        n = 5000
        for _ in range(n):
            code = world.sample_country(rng).code
            counts[code] = counts.get(code, 0) + 1
        total_weight = sum(c.peer_weight for c in world.countries)
        us = world.by_code["US"]
        assert counts.get("US", 0) / n == pytest.approx(
            us.peer_weight / total_weight, abs=0.04)

    def test_sample_city_from_country(self):
        world = build_core_world()
        rng = random.Random(5)
        de = world.by_code["DE"]
        for _ in range(20):
            assert world.sample_city(de, rng) in de.cities

    def test_region_weight_positive_everywhere(self):
        world = build_core_world()
        for region in REGIONS:
            assert world.region_weight(region) > 0

    def test_country_requires_cities(self):
        with pytest.raises(ValueError):
            Country("XX", "Empty", "Europe", 1.0, ())

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            World([])

    def test_duplicate_codes_rejected(self):
        c = Country("XX", "A", "Europe", 1.0, (City("a", 0, 0),))
        with pytest.raises(ValueError):
            World([c, c])


class TestGeoDatabase:
    def make_record(self, **kw):
        defaults = dict(country_code="DE", region="Europe", city="Berlin",
                        lat=52.52, lon=13.41, timezone="Europe/Berlin",
                        network="DE-ISP-1", asn=1100)
        defaults.update(kw)
        return GeoRecord(**defaults)

    def test_register_and_lookup(self):
        db = GeoDatabase()
        rec = self.make_record()
        db.register("10.0.0.1", rec)
        assert db.lookup("10.0.0.1") == rec

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            GeoDatabase().lookup("1.2.3.4")

    def test_get_returns_none_for_unknown(self):
        assert GeoDatabase().get("1.2.3.4") is None

    def test_contains(self):
        db = GeoDatabase()
        db.register("10.0.0.1", self.make_record())
        assert "10.0.0.1" in db
        assert "10.0.0.2" not in db

    def test_distinct_counts(self):
        db = GeoDatabase()
        db.register("a", self.make_record())
        db.register("b", self.make_record(lat=48.86, lon=2.35, country_code="FR", asn=1200))
        db.register("c", self.make_record())  # same location as "a"
        assert len(db) == 3
        assert db.distinct_locations() == 2
        assert db.distinct_countries() == 2
        assert db.distinct_asns() == 2
