"""Equivalence and dispatch tests for the water-filling kernels.

The vectorized kernel is only admissible because it is *bit-identical*
to the python reference: within a settle round every frozen flow gets
exactly the same float the reference assigns (the cap minimum or the
bottleneck's equal share), so the property here asserts exact ``==`` on
every rate — no tolerance.  The hypothesis strategy draws the shapes
that historically break allocators: shared resources, capacity-less
resources, per-flow caps at/below/above the fair share, and fully
unconstrained flows.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.net.flows import (
    _VECTOR_MIN_FLOWS, Flow, FlowNetwork, Resource, _max_min_fair,
    _VectorWaterfill,
)
from repro.net.sim import Simulator


# --------------------------------------------------------------- components


@st.composite
def components(draw):
    """A random settle component: flows sharing a pool of resources."""
    n_res = draw(st.integers(min_value=1, max_value=10))
    resources = []
    for i in range(n_res):
        capacity = draw(st.one_of(
            st.none(),  # unconstrained resource: never a bottleneck
            st.floats(min_value=0.5, max_value=5000.0,
                      allow_nan=False, allow_infinity=False),
        ))
        resources.append(Resource(f"r{i}", capacity))
    n_flows = draw(st.integers(min_value=1, max_value=40))
    flows = []
    for i in range(n_flows):
        k = draw(st.integers(min_value=0, max_value=min(4, n_res)))
        picked = draw(st.permutations(resources))[:k]
        cap = draw(st.one_of(
            st.none(),  # uncapped flow
            st.floats(min_value=0.1, max_value=2000.0,
                      allow_nan=False, allow_infinity=False),
        ))
        flows.append(Flow(i, tuple(picked), size=1e9, cap=cap,
                          on_complete=None, meta=None, now=0.0))
    return flows


class TestKernelEquivalence:
    @given(components())
    @settings(max_examples=200, deadline=None)
    def test_rates_are_bit_identical(self, flows):
        ordered = sorted(flows, key=lambda f: f.flow_id)
        ref = _max_min_fair(ordered, None)
        got = _VectorWaterfill().solve(ordered, None)
        assert set(ref) == set(got)
        for flow in ordered:
            assert ref[flow] == got[flow]  # exact, not approx

    def test_solver_reuse_across_components(self):
        """One solver instance, growing then shrinking inputs: buffers are
        reused across calls and slices never leak stale state."""
        solver = _VectorWaterfill()
        for n in (3, 50, 7, 80, 1):
            res = [Resource(f"x{i}", 10.0 * (i + 1)) for i in range(max(1, n // 4))]
            flows = [
                Flow(i, (res[i % len(res)],), size=1e9,
                     cap=None if i % 3 else 5.0,
                     on_complete=None, meta=None, now=0.0)
                for i in range(n)
            ]
            ref = _max_min_fair(flows, None)
            got = solver.solve(flows, None)
            for flow in flows:
                assert ref[flow] == got[flow]

    def test_two_networks_sharing_resources_do_not_cross_intern(self):
        """Stamps are global: interleaved solves over shared Resource
        objects must never mistake another call's slots for their own."""
        res = [Resource(f"s{i}", 100.0) for i in range(6)]
        a, b = _VectorWaterfill(), _VectorWaterfill()
        flows_a = [Flow(i, (res[i % 6], res[(i + 1) % 6]), size=1e9, cap=None,
                        on_complete=None, meta=None, now=0.0)
                   for i in range(30)]
        flows_b = [Flow(i, (res[(i + 3) % 6],), size=1e9, cap=None,
                        on_complete=None, meta=None, now=0.0)
                   for i in range(30)]
        assert a.solve(flows_a, None) == _max_min_fair(flows_a, None)
        assert b.solve(flows_b, None) == _max_min_fair(flows_b, None)
        assert a.solve(flows_a, None) == _max_min_fair(flows_a, None)


# ----------------------------------------------------------------- dispatch


class TestKernelDispatch:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork(Simulator(), kernel="fortran")

    def test_small_components_stay_on_python_path(self):
        """Under the threshold the numpy solver is never instantiated —
        tiny settles are cheaper in plain python."""
        sim = Simulator()
        net = FlowNetwork(sim, kernel="numpy")
        res = Resource("link", 100.0)
        for _ in range(_VECTOR_MIN_FLOWS - 1):
            net.start_flow([res], 1e6)
        assert net._vector is None

    def test_large_components_use_the_vector_solver(self):
        sim = Simulator()
        net = FlowNetwork(sim, kernel="numpy")
        res = Resource("link", 100.0)
        for _ in range(_VECTOR_MIN_FLOWS):
            net.start_flow([res], 1e6)
        assert net._vector is not None

    def test_python_kernel_never_touches_numpy(self):
        sim = Simulator()
        net = FlowNetwork(sim, kernel="python")
        res = Resource("link", 100.0)
        for _ in range(_VECTOR_MIN_FLOWS + 5):
            net.start_flow([res], 1e6)
        assert net._vector is None

    def test_kernels_agree_end_to_end(self):
        """Identical flow schedules under both kernels complete at the
        same simulated times with the same rates."""
        def run(kernel):
            sim = Simulator()
            net = FlowNetwork(sim, kernel=kernel)
            res = [Resource(f"l{i}", 50.0 + 10.0 * i) for i in range(8)]
            done = []
            for i in range(40):
                net.start_flow(
                    [res[i % 8], res[(i * 3 + 1) % 8]],
                    size=1e6 + 1e5 * i,
                    cap=None if i % 4 else 20.0,
                    on_complete=lambda f: done.append((sim.now, f.flow_id)),
                )
            sim.run()
            return done

        assert run("python") == run("numpy")


# ---------------------------------------------------------- config plumbing


class TestKernelConfig:
    def test_invalid_config_kernel_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(kernel="fortran")

    def test_explicit_kernel_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert SystemConfig(kernel="numpy").resolve_kernel() == "numpy"

    def test_auto_resolves_through_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert SystemConfig().resolve_kernel() == "python"
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert SystemConfig().resolve_kernel() == "numpy"

    def test_auto_defaults_to_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        pytest.importorskip("numpy")
        assert SystemConfig().resolve_kernel() == "numpy"
