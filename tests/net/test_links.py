"""Tests for the broadband access-link models."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.links import (
    AccessLink, BroadbandModel, BroadbandTier, DEFAULT_BROADBAND_TIERS,
    EdgeCapacityModel, mbps,
)


class TestUnits:
    def test_mbps_conversion(self):
        assert mbps(8.0) == pytest.approx(1e6)  # 8 Mbit/s = 1 MB/s

    def test_mbps_zero(self):
        assert mbps(0.0) == 0.0


class TestBroadbandModel:
    def test_sampled_link_is_asymmetric_or_equal(self, rng):
        model = BroadbandModel(rng)
        for i in range(50):
            link = model.sample(f"p{i}")
            assert link.up_bps <= link.down_bps

    def test_speed_multiplier_scales_both_directions(self):
        a = BroadbandModel(random.Random(5)).sample("x", speed_multiplier=1.0)
        b = BroadbandModel(random.Random(5)).sample("x", speed_multiplier=2.0)
        assert b.down_bps == pytest.approx(2 * a.down_bps)

    def test_invalid_multiplier_rejected(self, rng):
        with pytest.raises(ValueError):
            BroadbandModel(rng).sample("x", speed_multiplier=0.0)

    def test_tier_labels_come_from_mix(self, rng):
        model = BroadbandModel(rng)
        names = {t.name for t in DEFAULT_BROADBAND_TIERS}
        for i in range(30):
            assert model.sample(f"p{i}").tier in names

    def test_empty_tiers_rejected(self, rng):
        with pytest.raises(ValueError):
            BroadbandModel(rng, tiers=())

    def test_zero_weight_tiers_rejected(self, rng):
        tier = BroadbandTier("t", 0.0, (1.0, 2.0), (0.5, 1.0))
        with pytest.raises(ValueError):
            BroadbandModel(rng, tiers=(tier,))

    def test_single_tier_respects_ranges(self, rng):
        tier = BroadbandTier("only", 1.0, (10.0, 20.0), (1.0, 2.0))
        model = BroadbandModel(rng, tiers=(tier,))
        for i in range(40):
            link = model.sample(f"p{i}")
            assert mbps(10.0) <= link.down_bps <= mbps(20.0)
            assert link.up_bps <= mbps(2.0)

    def test_asymmetry_property(self, rng):
        link = BroadbandModel(rng).sample("x")
        assert link.asymmetry == pytest.approx(link.down_bps / link.up_bps)

    def test_resources_are_distinct_per_sample(self, rng):
        model = BroadbandModel(rng)
        a = model.sample("a")
        b = model.sample("b")
        assert a.downlink is not b.downlink
        assert a.uplink is not a.downlink

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100000))
    def test_links_always_positive(self, seed):
        model = BroadbandModel(random.Random(seed))
        link = model.sample("p")
        assert link.down_bps > 0
        assert link.up_bps > 0


class TestEdgeCapacity:
    def test_default_is_10gbit(self):
        res = EdgeCapacityModel().make_resource("e1")
        assert res.capacity == pytest.approx(mbps(10_000.0))

    def test_invalid_egress_rejected(self):
        with pytest.raises(ValueError):
            EdgeCapacityModel(egress_mbps=0.0)

    def test_resource_name_includes_server(self):
        res = EdgeCapacityModel().make_resource("frankfurt-1")
        assert "frankfurt-1" in res.name
