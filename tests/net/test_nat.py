"""Tests for the NAT taxonomy and traversal compatibility."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, strategies as st

from repro.net.nat import DEFAULT_NAT_MIX, NATModel, NATProfile, NATType, can_connect


class TestCompatibilityMatrix:
    def test_open_connects_to_everything_unblocked(self):
        for t in NATType:
            if t is NATType.BLOCKED:
                continue
            assert can_connect(NATType.OPEN, t)

    def test_blocked_connects_to_nothing(self):
        for t in NATType:
            assert not can_connect(NATType.BLOCKED, t)
            assert not can_connect(t, NATType.BLOCKED)

    def test_symmetric_pair_fails(self):
        assert not can_connect(NATType.SYMMETRIC, NATType.SYMMETRIC)

    def test_symmetric_port_restricted_fails(self):
        assert not can_connect(NATType.SYMMETRIC, NATType.PORT_RESTRICTED)
        assert not can_connect(NATType.PORT_RESTRICTED, NATType.SYMMETRIC)

    def test_symmetric_with_cone_succeeds(self):
        assert can_connect(NATType.SYMMETRIC, NATType.FULL_CONE)
        assert can_connect(NATType.SYMMETRIC, NATType.RESTRICTED_CONE)

    def test_cone_pairs_succeed(self):
        cones = (NATType.FULL_CONE, NATType.RESTRICTED_CONE, NATType.PORT_RESTRICTED)
        for a, b in itertools.product(cones, cones):
            assert can_connect(a, b)

    @given(a=st.sampled_from(list(NATType)), b=st.sampled_from(list(NATType)))
    def test_matrix_is_symmetric(self, a, b):
        assert can_connect(a, b) == can_connect(b, a)


class TestNATModel:
    def test_sample_returns_profile(self, rng):
        profile = NATModel(rng).sample()
        assert isinstance(profile, NATProfile)
        assert profile.true_type in NATType

    def test_mix_proportions_roughly_respected(self):
        model = NATModel(random.Random(3), misclassify_prob=0.0)
        counts = {t: 0 for t in NATType}
        n = 4000
        for _ in range(n):
            counts[model.sample().true_type] += 1
        for nat_type, weight in DEFAULT_NAT_MIX.items():
            assert counts[nat_type] / n == pytest.approx(weight, abs=0.05)

    def test_no_misclassification_when_disabled(self):
        model = NATModel(random.Random(3), misclassify_prob=0.0)
        for _ in range(200):
            profile = model.sample()
            assert not profile.misclassified

    def test_misclassification_rate(self):
        model = NATModel(random.Random(3), misclassify_prob=0.5)
        n = 2000
        wrong = sum(1 for _ in range(n) if model.sample().misclassified)
        assert wrong / n == pytest.approx(0.5, abs=0.05)

    def test_classify_returns_reported(self, rng):
        model = NATModel(rng)
        profile = NATProfile(NATType.OPEN, NATType.SYMMETRIC)
        assert model.classify(profile) is NATType.SYMMETRIC

    def test_invalid_misclassify_prob_rejected(self, rng):
        with pytest.raises(ValueError):
            NATModel(rng, misclassify_prob=1.5)

    def test_custom_mix(self, rng):
        model = NATModel(rng, mix={NATType.OPEN: 1.0}, misclassify_prob=0.0)
        for _ in range(20):
            assert model.sample().true_type is NATType.OPEN

    def test_empty_mix_rejected(self, rng):
        with pytest.raises(ValueError):
            NATModel(rng, mix={NATType.OPEN: 0.0})
