"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.sim import Event, SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.0).now == 42.0

    def test_callback_fires_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_runs_after_current_event(self):
        sim = Simulator()
        order = []
        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("nested"))
        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(seen)

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_arbitrary_delays_fire_sorted(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda d=d: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_remaining_events_fire_on_second_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        sim.run()
        assert seen == [10]

    def test_stop_from_callback(self):
        sim = Simulator()
        seen = []
        def first():
            seen.append(1)
            sim.stop()
        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.pending_count() == 1

    def test_max_events_limit(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: seen.append(i))
        sim.run(max_events=3)
        assert len(seen) == 3

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        error: list[Exception] = []
        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                error.append(exc)
        sim.schedule(1.0, reenter)
        sim.run()
        assert len(error) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append(1))
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_property(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.pending
        sim.run()
        assert not event.pending

    def test_cancel_from_another_callback(self):
        sim = Simulator()
        seen = []
        later = sim.schedule(2.0, lambda: seen.append(2))
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert seen == []


class TestRecurring:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        seen = []
        sim.every(10.0, lambda: seen.append(sim.now))
        sim.run(until=35.0)
        assert seen == [10.0, 20.0, 30.0]

    def test_every_with_first_delay(self):
        sim = Simulator()
        seen = []
        sim.every(10.0, lambda: seen.append(sim.now), first_delay=1.0)
        sim.run(until=25.0)
        assert seen == [1.0, 11.0, 21.0]

    def test_every_until_bound(self):
        sim = Simulator()
        seen = []
        sim.every(10.0, lambda: seen.append(sim.now), until=25.0)
        sim.run(until=100.0)
        assert seen == [10.0, 20.0]

    def test_cancelling_recurring_event_stops_it(self):
        sim = Simulator()
        seen = []
        event = sim.every(10.0, lambda: seen.append(sim.now))
        sim.schedule(25.0, event.cancel)
        sim.run(until=100.0)
        assert seen == [10.0, 20.0]

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)

    def test_cancel_recurring_from_its_own_callback(self):
        # A recurring callback that decides "I'm done" mid-fire must be able
        # to cancel itself; tick() re-checks cancelled after the callback.
        sim = Simulator()
        seen = []
        event = None
        def cb():
            seen.append(sim.now)
            if len(seen) == 3:
                event.cancel()
        event = sim.every(10.0, cb)
        sim.run(until=100.0)
        assert seen == [10.0, 20.0, 30.0]

    def test_cancel_recurring_from_own_callback_then_nothing_pending(self):
        sim = Simulator()
        event = None
        def cb():
            event.cancel()
        event = sim.every(5.0, cb)
        sim.run(until=100.0)
        assert sim.pending_count() == 0
        assert not event.pending


class TestEdgeCases:
    def test_schedule_at_exactly_now(self):
        # An absolute time equal to the clock is not "in the past": it runs
        # after the current event, at the same timestamp.
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]
        assert sim.now == 10.0

    def test_schedule_at_now_from_inside_callback(self):
        sim = Simulator()
        order = []
        def outer():
            order.append("outer")
            sim.schedule_at(sim.now, lambda: order.append("inner"))
        sim.schedule(5.0, outer)
        sim.schedule(5.0, lambda: order.append("sibling"))
        sim.run()
        assert order == ["outer", "sibling", "inner"]

    def test_same_time_mixed_sources_fire_in_scheduling_order(self):
        # One-shots and a recurring timer landing on the same timestamp
        # fire in the order they were (re)scheduled: the recurring event
        # re-enters the heap when it fires, so at t=20 it was scheduled
        # (at t=10) before the one-shot created at t=15.
        sim = Simulator()
        order = []
        sim.every(10.0, lambda: order.append(("every", sim.now)))
        sim.schedule(15.0, lambda: sim.schedule(5.0, lambda: order.append(("oneshot", sim.now))))
        sim.run(until=25.0)
        assert order == [("every", 10.0), ("every", 20.0), ("oneshot", 20.0)]


class TestCounters:
    def test_events_processed_counts_fired_callbacks(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5
        assert sim.heap_pushes == 5

    def test_stale_pops_count_cancelled_entries(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        events[1].cancel()
        events[2].cancel()
        sim.run()
        assert sim.events_processed == 2
        assert sim.stale_pops == 2

    def test_pending_count_is_live_event_count(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
        assert sim.pending_count() == 6
        events[0].cancel()
        assert sim.pending_count() == 5
        events[0].cancel()  # double-cancel must not double-decrement
        assert sim.pending_count() == 5
        sim.run(until=3.5)
        assert sim.pending_count() == 3

    def test_in_event_true_only_inside_callbacks(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.in_event))
        assert not sim.in_event
        sim.run()
        assert seen == [True]
        assert not sim.in_event

    def test_post_event_hook_runs_after_every_callback(self):
        sim = Simulator()
        order = []
        sim.add_post_event_hook(lambda: order.append("hook"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "hook", "b", "hook"]
