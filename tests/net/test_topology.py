"""Tests for the synthetic AS topology."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.net.geo import build_core_world
from repro.net.topology import ASTopology, build_topology


@pytest.fixture(scope="module")
def topology():
    world = build_core_world()
    return build_topology(world, random.Random(99))


class TestBuild:
    def test_every_country_has_eyeballs(self, topology):
        world = build_core_world()
        for country in world.countries:
            assert topology.eyeball_ases(country.code), country.code

    def test_asns_unique(self, topology):
        asns = [a.asn for a in topology.ases]
        assert len(asns) == len(set(asns))

    def test_graph_is_connected(self, topology):
        assert nx.is_connected(topology.graph)

    def test_eyeballs_have_zipf_like_sizes(self, topology):
        eyeballs = topology.eyeball_ases("DE")
        weights = [a.size_weight for a in eyeballs]
        assert weights == sorted(weights, reverse=True)
        if len(weights) > 1:
            assert weights[0] > weights[-1]

    def test_network_regions_are_paper_scale(self, topology):
        regions = topology.network_regions()
        # "the current deployment has less than 20 network regions"
        assert 2 <= len(regions) < 20

    def test_tier1_clique_exists(self, topology):
        tier1 = [a for a in topology.ases if a.kind == "tier1"]
        assert len(tier1) >= 3
        for a in tier1:
            for b in tier1:
                if a.asn != b.asn:
                    assert topology.graph.has_edge(a.asn, b.asn)


class TestSampling:
    def test_sample_as_returns_eyeball_of_country(self, topology):
        rng = random.Random(5)
        for _ in range(30):
            asys = topology.sample_as("US", rng)
            assert asys.country_code == "US"
            assert asys.kind == "eyeball"

    def test_sample_unknown_country_raises(self, topology):
        with pytest.raises(KeyError):
            topology.sample_as("ZZ", random.Random(1))

    def test_largest_as_dominates_samples(self, topology):
        rng = random.Random(7)
        eyeballs = topology.eyeball_ases("DE")
        top = max(eyeballs, key=lambda a: a.size_weight)
        hits = sum(1 for _ in range(500) if topology.sample_as("DE", rng).asn == top.asn)
        assert hits > 500 / len(eyeballs)


class TestConnectivity:
    def test_directly_connected_for_edges(self, topology):
        a, b = next(iter(topology.graph.edges))
        assert topology.directly_connected(a, b)

    def test_not_connected_for_non_edges(self, topology):
        non_edges = nx.non_edges(topology.graph)
        a, b = next(non_edges)
        assert not topology.directly_connected(a, b)

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            ASTopology([], nx.Graph())
