"""Fixtures for the orchestrator test layer.

Everything here runs *tiny* scenarios (sub-100ms) so the parity and
cache-correctness properties can be checked exhaustively in the fast tier;
only the CLI-level golden parity tests pay for the real ``small`` scale.
"""

from __future__ import annotations

import pytest

from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)


def tiny_config(seed: int = 5, **overrides) -> ScenarioConfig:
    """A sub-second scenario: big enough to produce a real trace."""
    import dataclasses

    base = ScenarioConfig(
        seed=seed,
        duration_days=0.5,
        population=PopulationConfig(n_peers=60),
        demand=DemandConfig(total_downloads=50, duration_days=0.5),
        catalog=CatalogConfig(objects_per_provider=6),
    )
    return dataclasses.replace(base, **overrides) if overrides else base


@pytest.fixture(scope="session")
def tiny_artifact():
    """One tiny scenario artifact, computed once for the whole session."""
    from repro.runner import run_scenario_artifact

    return run_scenario_artifact(tiny_config())
