"""On-disk result cache correctness: hits are deep-equal, corruption is
detected (never served), version bumps invalidate, eviction respects LRU."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.runner import ResultCache, cache_namespace, fingerprint_config

pytestmark = pytest.mark.runner


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _deep_equal(a, b) -> bool:
    """Artifact equality via the analysis-facing surface."""
    return (
        a.fingerprint == b.fingerprint
        and a.config == b.config
        and a.stats.as_dict() == b.stats.as_dict()
        and len(a.logstore.downloads) == len(b.logstore.downloads)
        and [ (r.outcome, r.peer_bytes, r.total_bytes)
              for r in a.logstore.downloads ]
            == [ (r.outcome, r.peer_bytes, r.total_bytes)
                 for r in b.logstore.downloads ]
        and a.mobility_census == b.mobility_census
        and a.violations == b.violations
    )


class TestRoundTrip:
    def test_miss_on_empty_cache(self, cache):
        assert cache.get("0" * 64) is None

    def test_hit_is_deep_equal(self, cache, tiny_artifact):
        cache.put(tiny_artifact.fingerprint, tiny_artifact)
        loaded = cache.get(tiny_artifact.fingerprint)
        assert loaded is not None
        assert loaded is not tiny_artifact  # a real disk round trip
        assert _deep_equal(loaded, tiny_artifact)

    def test_fingerprint_matches_config(self, cache, tiny_artifact):
        assert tiny_artifact.fingerprint == fingerprint_config(
            tiny_artifact.config)

    def test_no_temp_files_left_behind(self, cache, tiny_artifact):
        cache.put(tiny_artifact.fingerprint, tiny_artifact)
        leftovers = [p for p in cache.root.rglob("*") if ".tmp" in p.name]
        assert leftovers == []


class TestCorruption:
    def test_truncated_payload_degrades_to_miss(self, cache, tiny_artifact):
        path = cache.put(tiny_artifact.fingerprint, tiny_artifact)
        path.write_bytes(path.read_bytes()[:100])
        assert cache.get(tiny_artifact.fingerprint) is None
        # The corrupt entry was dropped, so the slot rebuilds cleanly.
        assert cache.entries() == []

    def test_bitflip_degrades_to_miss(self, cache, tiny_artifact):
        path = cache.put(tiny_artifact.fingerprint, tiny_artifact)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        assert cache.get(tiny_artifact.fingerprint) is None

    def test_verify_reports_digest_mismatch(self, cache, tiny_artifact):
        path = cache.put(tiny_artifact.fingerprint, tiny_artifact)
        assert cache.verify() == []
        payload = bytearray(path.read_bytes())
        payload[0] ^= 0xFF
        path.write_bytes(bytes(payload))
        problems = cache.verify()
        assert problems == [(tiny_artifact.fingerprint, "digest mismatch")]
        # verify() is diagnostic only: the entry is still on disk.
        assert path.exists()

    def test_verify_reports_missing_payload(self, cache, tiny_artifact):
        path = cache.put(tiny_artifact.fingerprint, tiny_artifact)
        path.unlink()
        assert cache.verify() == [(tiny_artifact.fingerprint,
                                   "missing payload")]


class TestInvalidation:
    def test_schema_version_bump_invalidates(self, cache, tiny_artifact,
                                             monkeypatch):
        import repro.runner.fingerprint as fingerprint_module

        cache.put(tiny_artifact.fingerprint, tiny_artifact)
        monkeypatch.setattr(fingerprint_module, "CACHE_SCHEMA_VERSION",
                            fingerprint_module.CACHE_SCHEMA_VERSION + 1)
        bumped = ResultCache(cache.root)  # namespace resolves at init
        assert bumped.namespace != cache.namespace
        assert bumped.get(tiny_artifact.fingerprint) is None
        # The old entry survives on disk (a branch switch can come back to
        # it) and is flagged stale in the full listing.
        entries = bumped.entries(all_namespaces=True)
        assert [e.stale for e in entries] == [True]

    def test_clear_removes_everything(self, cache, tiny_artifact):
        cache.put(tiny_artifact.fingerprint, tiny_artifact)
        assert cache.clear() == 1
        assert cache.get(tiny_artifact.fingerprint) is None
        assert cache.entries(all_namespaces=True) == []


class TestEviction:
    def _fakes(self, tiny_artifact, n):
        """Distinct fingerprints around one payload (content is irrelevant
        to eviction order)."""
        return [(f"{i:02d}" + "e" * 62,
                 dataclasses.replace(tiny_artifact,
                                     fingerprint=f"{i:02d}" + "e" * 62))
                for i in range(n)]

    def test_lru_eviction_past_entry_budget(self, tmp_path, tiny_artifact):
        cache = ResultCache(tmp_path / "cache", max_entries=2)
        fakes = self._fakes(tiny_artifact, 3)
        for fp, artifact in fakes:
            cache.put(fp, artifact)
        kept = {e.fingerprint for e in cache.entries()}
        assert len(kept) == 2
        assert fakes[0][0] not in kept  # oldest last_used went first

    def test_get_refreshes_lru_rank(self, tmp_path, tiny_artifact):
        cache = ResultCache(tmp_path / "cache", max_entries=2)
        fakes = self._fakes(tiny_artifact, 3)
        cache.put(*fakes[0])
        cache.put(*fakes[1])
        assert cache.get(fakes[0][0]) is not None  # touch: now most recent
        cache.put(*fakes[2])
        kept = {e.fingerprint for e in cache.entries()}
        assert fakes[0][0] in kept
        assert fakes[1][0] not in kept

    def test_byte_budget_eviction(self, tmp_path, tiny_artifact):
        payload_size = len(pickle.dumps(tiny_artifact,
                                        protocol=pickle.HIGHEST_PROTOCOL))
        cache = ResultCache(tmp_path / "cache",
                            max_bytes=int(payload_size * 1.5))
        fakes = self._fakes(tiny_artifact, 2)
        for fp, artifact in fakes:
            cache.put(fp, artifact)
        assert len(cache.entries()) == 1

    def test_budgets_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)


class TestNamespaceLayout:
    def test_entries_live_under_the_active_namespace(self, cache,
                                                     tiny_artifact):
        path = cache.put(tiny_artifact.fingerprint, tiny_artifact)
        assert cache_namespace() in path.parts
        assert path.parent.name == tiny_artifact.fingerprint[:2]
