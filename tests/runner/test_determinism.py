"""Worker determinism: a pool worker reproduces the in-process bytes.

Two layers of proof: a hypothesis property over randomly drawn small
configs (any config the generator can express must run identically in a
worker), and a hostile-environment test where the worker's *global* RNGs
are deliberately polluted before it runs — the scenario must still land on
the pinned goldens, because every RNG in the system is instance-scoped and
seeded from the config alone.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.runner import fingerprint_config, parallel_map, run_scenario_artifact
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)

pytestmark = pytest.mark.runner

GOLDEN_DIR = Path(__file__).parent.parent / "golden"


def _surface(artifact) -> tuple:
    """Everything the analysis layer reads, as a comparable value."""
    return (
        artifact.fingerprint,
        artifact.stats.as_dict(),
        tuple((r.outcome, r.peer_bytes, r.total_bytes, r.started_at)
              for r in artifact.logstore.downloads),
        artifact.mobility_census,
        artifact.finalized_downloads,
        artifact.timeline,
        artifact.violations,
    )


small_configs = st.builds(
    lambda seed, n_peers, downloads, days, warm: ScenarioConfig(
        seed=seed,
        duration_days=days,
        population=PopulationConfig(n_peers=n_peers),
        demand=DemandConfig(total_downloads=downloads, duration_days=days),
        catalog=CatalogConfig(objects_per_provider=5),
        warm_copies_per_peer=warm,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
    n_peers=st.integers(min_value=30, max_value=80),
    downloads=st.integers(min_value=20, max_value=60),
    days=st.sampled_from((0.25, 0.5)),
    warm=st.sampled_from((0.0, 2.0, 4.0)),
)


@settings(max_examples=5, deadline=None)
@given(config=small_configs)
def test_worker_run_equals_in_process_run(config):
    in_process = run_scenario_artifact(config)
    # Two pool workers run the same config independently; both must agree
    # with the parent byte-for-byte on the whole analysis surface.
    workers = parallel_map(run_scenario_artifact, [config, config], jobs=2)
    assert _surface(workers[0]) == _surface(in_process)
    assert _surface(workers[1]) == _surface(in_process)


def _pollute_global_rngs() -> None:
    """Worker initializer: trash every global RNG a lazy path could read."""
    random.seed(0xBAD5EED)
    try:
        import numpy
        numpy.random.seed(1_234_567)
    except ImportError:  # pragma: no cover
        pass


def test_polluted_worker_still_reproduces_the_goldens(monkeypatch):
    """A worker whose global RNG state is hostile still lands on the
    pinned golden bytes — the system uses no global randomness."""
    import repro.experiments.common as common
    from repro.experiments import exp_fig4, exp_table1
    from repro.runner import Orchestrator

    config = common.standard_config("small", 42)
    with ProcessPoolExecutor(
            max_workers=1, initializer=_pollute_global_rngs) as pool:
        artifact = pool.submit(run_scenario_artifact, config).result()
    assert artifact.fingerprint == fingerprint_config(config)

    # Render the experiments from the worker-produced artifact only.
    memo = {artifact.fingerprint: artifact}
    monkeypatch.setattr(common, "_ARTIFACTS", memo)
    monkeypatch.setattr(common, "_RUNNER", Orchestrator(memory=memo))
    for module, golden in ((exp_table1, "exp_table1_small_seed42.txt"),
                           (exp_fig4, "exp_fig4_small_seed42.txt")):
        expected = (GOLDEN_DIR / golden).read_text()
        assert module.run("small", 42).text == expected


def test_fuzz_seed_runs_identically_in_a_worker():
    from repro.fuzz import run_seed, run_seeds

    parent = run_seed(3)
    pooled = run_seeds([3, 4], jobs=2)[0]
    assert pooled.spec == parent.spec
    assert pooled.ok == parent.ok
    assert pooled.completed_downloads == parent.completed_downloads
    assert pooled.warnings == parent.warnings


def test_drill_report_identical_across_the_pool():
    from repro.faults import DrillRequest, run_drill_portable

    request = DrillRequest(scenario="dn_wipe", seed=7, fault_duration=600.0)
    parent = run_drill_portable(request)
    pooled = parallel_map(run_drill_portable, [request, request], jobs=2)
    assert pooled[0].text == parent.text
    assert pooled[1].data == parent.data
