"""Fingerprint correctness: every config knob moves the hash, nothing else.

The cache is only sound if the fingerprint is a pure, *complete* function
of the configuration: the exhaustive sweep below mutates every leaf field
of the whole ``ScenarioConfig`` tree (nested dataclasses included) and
asserts each mutation lands in a different cache slot.  A field this sweep
misses is a field whose change would silently serve stale results.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary import AdversaryConfig
from repro.core.placement import PlacementConfig
from repro.faults.scenarios import build_scenario
from repro.vod import VodConfig
from repro.workload.devices import default_mix
from repro.workload.sharding import ShardingConfig
from repro.runner import (
    CACHE_SCHEMA_VERSION, cache_namespace, canonicalize, code_fingerprint,
    fingerprint_config,
)

from tests.runner.conftest import tiny_config

pytestmark = pytest.mark.runner


# --------------------------------------------------- exhaustive field sweep

def _candidates(value, name):
    """Candidate replacement values != ``value``; the first one the field's
    ``__post_init__`` validation accepts wins."""
    if name == "mode":  # constrained choice; 'auto' resolves before hashing
        return ["strict" if value != "strict" else "observe"]
    if name == "kernel":  # constrained choice; 'auto' resolves before hashing
        return ["python" if value != "python" else "numpy"]
    if name == "store":  # constrained choice; 'auto' resolves before hashing
        return ["object" if value != "object" else "columnar"]
    if name == "shards":  # positive int or 'auto' (resolves before hashing)
        return [4 if value != 4 else 2]
    if name == "active_peer_cap":  # Optional[int]; None = every peer active
        return [1000]
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, int):
        return [value + 1, max(value - 1, 1)]
    if isinstance(value, float):
        # Several shots: validated ranges differ ((0,1] fractions,
        # probabilities, positive rates...).
        return [c for c in (value + 0.37, value * 0.9, value * 0.5 + 0.001,
                            0.123, 0.5) if c != value]
    if isinstance(value, str):
        return [value + "x"]
    if name == "vod":  # Optional[VodConfig]; None means "no streaming layer"
        return [VodConfig()]
    if name == "adversary":  # Optional[AdversaryConfig]; None = honest swarm
        return [AdversaryConfig()]
    if name == "sharding":  # Optional[ShardingConfig]; None = single trace
        return [ShardingConfig()]
    if name == "device":  # Optional[DeviceMixConfig]; None = homogeneous
        return [default_mix()]
    if name == "placement":  # Optional[PlacementConfig]; None = defaults
        return [PlacementConfig(copies_target=3)]
    if name == "profile_mix":  # fixed-length weight vector (one per profile)
        return [(value[0] + 1.0,) + tuple(value[1:])]
    if value is None:  # Optional[float] knobs (egress caps, overrides)
        return [0.5]
    if isinstance(value, dict):  # e.g. DemandConfig.region_tz
        return [{**value, "__sweep__": 1.0}]
    if isinstance(value, tuple):
        if name == "faults":
            return [tuple(build_scenario("dn_wipe", at=600.0, duration=600.0))]
        if name == "checkers":
            return [("flow-feasibility",)]
        if value and isinstance(value[0], (int, float, str)):
            return [value + (value[0],)]
    raise AssertionError(
        f"no mutation rule for field {name!r} ({type(value).__qualname__}); "
        "extend the sweep — an unswept field is an untested cache key"
    )


def _dataclass_mutations(obj, path=""):
    """(field path, mutated copy) for every leaf field of a dataclass tree."""
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        where = f"{path}{f.name}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            for leaf, inner in _dataclass_mutations(value, f"{where}."):
                yield leaf, dataclasses.replace(obj, **{f.name: inner})
            continue
        mutant = None
        for candidate in _candidates(value, f.name):
            try:
                mutant = dataclasses.replace(obj, **{f.name: candidate})
            except ValueError:
                continue  # failed the field's validation; try the next
            break
        assert mutant is not None, f"no valid mutation found for {where!r}"
        yield where, mutant


def _all_config_mutations(config):
    for name, mutant in _dataclass_mutations(config):
        yield name, mutant


def test_every_field_of_the_config_tree_changes_the_fingerprint():
    config = tiny_config()
    base = fingerprint_config(config)
    seen = {base}
    count = 0
    for name, mutant in _all_config_mutations(config):
        fp = fingerprint_config(mutant)
        assert fp != base, f"mutating {name!r} did not change the fingerprint"
        seen.add(fp)
        count += 1
    # The tree is deep: if the sweep collapses to a handful of fields the
    # recursion is broken, not the fingerprint.
    assert count >= 40, f"sweep only covered {count} leaf fields"
    assert len(seen) == count + 1, "two distinct mutations collided"


def test_equal_configs_fingerprint_identically():
    assert fingerprint_config(tiny_config()) == fingerprint_config(tiny_config())


def test_fingerprint_is_stable_within_a_process():
    config = tiny_config(seed=11)
    assert fingerprint_config(config) == fingerprint_config(config)


def test_integral_floats_collapse_to_ints():
    a = tiny_config(duration_days=1.0)
    b = tiny_config(duration_days=1)
    assert fingerprint_config(a) == fingerprint_config(b)


def test_vod_none_and_default_vod_do_not_collide():
    # The streaming layer is itself a cache key: attaching even an
    # all-defaults VodConfig must land in a different slot than None.
    base = tiny_config()
    with_vod = dataclasses.replace(base, vod=VodConfig())
    assert fingerprint_config(base) != fingerprint_config(with_vod)


def test_every_vod_knob_is_a_cache_key():
    # Same contract as the whole-tree sweep, scoped to the VodConfig
    # subtree (the top-level sweep can't reach it: the default is None).
    base = dataclasses.replace(tiny_config(), vod=VodConfig())
    base_fp = fingerprint_config(base)
    seen = {base_fp}
    count = 0
    for name, mutant in _dataclass_mutations(base):
        if not name.startswith("vod."):
            continue
        fp = fingerprint_config(mutant)
        assert fp != base_fp, f"mutating {name!r} did not change the fingerprint"
        seen.add(fp)
        count += 1
    assert count >= 15, f"vod sweep only covered {count} leaf fields"
    assert len(seen) == count + 1, "two distinct vod mutations collided"


def test_adversary_none_and_default_do_not_collide():
    # The adversarial slice is itself a cache key: attaching even an
    # all-defaults AdversaryConfig must land in a different slot than None.
    base = tiny_config()
    with_adv = dataclasses.replace(base, adversary=AdversaryConfig())
    assert fingerprint_config(base) != fingerprint_config(with_adv)


def test_every_adversary_knob_is_a_cache_key():
    # Same contract as the whole-tree sweep, scoped to the AdversaryConfig
    # subtree (the top-level sweep can't reach it: the default is None).
    base = dataclasses.replace(tiny_config(), adversary=AdversaryConfig())
    base_fp = fingerprint_config(base)
    seen = {base_fp}
    count = 0
    for name, mutant in _dataclass_mutations(base):
        if not name.startswith("adversary."):
            continue
        fp = fingerprint_config(mutant)
        assert fp != base_fp, f"mutating {name!r} did not change the fingerprint"
        seen.add(fp)
        count += 1
    assert count >= 4, f"adversary sweep only covered {count} leaf fields"
    assert len(seen) == count + 1, "two distinct adversary mutations collided"


def test_sharding_none_and_default_do_not_collide():
    # Sharded execution is itself a cache key even though shards=1 and
    # shards=4 are byte-identical by construction: the region-factored
    # trace differs from the classic single trace, so attaching even an
    # all-defaults ShardingConfig must land in a different slot than None.
    base = tiny_config()
    with_sharding = dataclasses.replace(base, sharding=ShardingConfig())
    assert fingerprint_config(base) != fingerprint_config(with_sharding)


def test_every_sharding_knob_is_a_cache_key():
    # Same contract as the whole-tree sweep, scoped to the ShardingConfig
    # subtree (the top-level sweep can't reach it: the default is None).
    base = dataclasses.replace(tiny_config(), sharding=ShardingConfig())
    base_fp = fingerprint_config(base)
    seen = {base_fp}
    count = 0
    for name, mutant in _dataclass_mutations(base):
        if not name.startswith("sharding."):
            continue
        fp = fingerprint_config(mutant)
        assert fp != base_fp, f"mutating {name!r} did not change the fingerprint"
        seen.add(fp)
        count += 1
    assert count >= 2, f"sharding sweep only covered {count} leaf fields"
    assert len(seen) == count + 1, "two distinct sharding mutations collided"


def test_distinct_configs_same_scale_and_seed_do_not_collide():
    # Regression for the old (scale, seed)-keyed cache: two experiments
    # tweaking different knobs of the same scale/seed must never share an
    # entry (exp_fig5 vs exp_ablation_prefetch both ran "small"/42).
    base = tiny_config(seed=42)
    variant = tiny_config(seed=42, warm_copies_per_peer=0.0)
    assert base.seed == variant.seed
    assert fingerprint_config(base) != fingerprint_config(variant)


# ------------------------------------------------------------ canonicalize

def test_canonicalize_rejects_unstable_types():
    with pytest.raises(TypeError, match="canonicalize"):
        canonicalize(object())


def test_canonicalize_sorts_dict_keys():
    assert canonicalize({"b": 1, "a": 2}) == canonicalize(
        dict([("a", 2), ("b", 1)]))


def test_auto_invariant_mode_resolves_through_env(monkeypatch):
    # 'auto' is an env indirection; the fingerprint must capture the
    # resolved behaviour so strict and observe runs never share a slot.
    from repro.core.config import InvariantConfig

    auto = InvariantConfig(mode="auto")
    monkeypatch.setenv("REPRO_INVARIANTS", "strict")
    strict_fp = fingerprint_config(auto)
    monkeypatch.setenv("REPRO_INVARIANTS", "observe")
    observe_fp = fingerprint_config(auto)
    assert strict_fp != observe_fp
    assert strict_fp == fingerprint_config(InvariantConfig(mode="strict"))
    assert observe_fp == fingerprint_config(InvariantConfig(mode="observe"))


def test_kernel_choice_is_a_cache_key():
    # A numpy-settled run and a python-settled run are byte-identical by
    # contract, but the fingerprint keys on configuration, not on trust:
    # a kernel switch must miss the cache so parity stays *checked*.
    from repro.core.config import SystemConfig

    numpy_fp = fingerprint_config(SystemConfig(kernel="numpy"))
    python_fp = fingerprint_config(SystemConfig(kernel="python"))
    assert numpy_fp != python_fp


def test_auto_kernel_resolves_through_env(monkeypatch):
    # Same env-indirection contract as invariant mode: 'auto' hashes as
    # whatever REPRO_KERNEL makes it mean at run time.
    from repro.core.config import SystemConfig

    auto = SystemConfig(kernel="auto")
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    numpy_fp = fingerprint_config(auto)
    monkeypatch.setenv("REPRO_KERNEL", "python")
    python_fp = fingerprint_config(auto)
    assert numpy_fp != python_fp
    assert numpy_fp == fingerprint_config(SystemConfig(kernel="numpy"))
    assert python_fp == fingerprint_config(SystemConfig(kernel="python"))


def test_auto_store_resolves_through_env(monkeypatch):
    # Same env-indirection contract as kernel: the population store 'auto'
    # hashes as whatever REPRO_POPULATION_STORE makes it mean at run time,
    # so an object-graph run never shares a slot with a columnar run.
    from repro.workload.population import PopulationConfig

    auto = PopulationConfig(store="auto")
    monkeypatch.setenv("REPRO_POPULATION_STORE", "object")
    object_fp = fingerprint_config(auto)
    monkeypatch.setenv("REPRO_POPULATION_STORE", "columnar")
    columnar_fp = fingerprint_config(auto)
    assert object_fp != columnar_fp
    assert object_fp == fingerprint_config(PopulationConfig(store="object"))
    assert columnar_fp == fingerprint_config(PopulationConfig(store="columnar"))


def test_auto_shards_resolves_through_env(monkeypatch):
    # 'auto' shard width is an env indirection (REPRO_SHARDS): the
    # fingerprint hashes the resolved width so byte-parity across widths
    # stays a checked contract, never a cache hit.
    auto = ShardingConfig(shards="auto")
    monkeypatch.setenv("REPRO_SHARDS", "1")
    one_fp = fingerprint_config(auto)
    monkeypatch.setenv("REPRO_SHARDS", "4")
    four_fp = fingerprint_config(auto)
    assert one_fp != four_fp
    assert one_fp == fingerprint_config(ShardingConfig(shards=1))
    assert four_fp == fingerprint_config(ShardingConfig(shards=4))


# ------------------------------------------------------- cache namespacing

def test_cache_namespace_embeds_schema_version_and_code_digest():
    ns = cache_namespace()
    assert ns.startswith(f"v{CACHE_SCHEMA_VERSION}-")
    assert ns.endswith(code_fingerprint()[:16])


def test_schema_version_bump_moves_the_namespace(monkeypatch):
    import repro.runner.fingerprint as fingerprint_module

    before = cache_namespace()
    monkeypatch.setattr(fingerprint_module, "CACHE_SCHEMA_VERSION",
                        CACHE_SCHEMA_VERSION + 1)
    assert fingerprint_module.cache_namespace() != before
