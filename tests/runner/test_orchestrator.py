"""Orchestrator scheduling: dedup, cache resolution order, ordered merge."""

from __future__ import annotations

import dataclasses

import pytest

import repro.runner.orchestrator as orchestrator_module
from repro.runner import (
    Orchestrator, ResultCache, fingerprint_config, parallel_map,
)

from tests.runner.conftest import tiny_config

pytestmark = pytest.mark.runner


class TestParallelMap:
    def test_preserves_input_order_in_process(self):
        assert parallel_map(abs, [-3, 1, -2], jobs=1) == [3, 1, 2]

    def test_preserves_input_order_across_pool(self):
        # abs is picklable by reference; 2 workers, order must not leak.
        assert parallel_map(abs, [-3, 1, -2, -9], jobs=2) == [3, 1, 2, 9]

    def test_empty_input(self):
        assert parallel_map(abs, [], jobs=4) == []

    def test_fingerprints_identical_across_process_boundary(self):
        # The scheduler keys on fingerprints computed in the parent; a
        # worker recomputing them must agree, or the orchestrator's
        # sanity check would reject every pooled artifact.
        configs = [tiny_config(seed=s) for s in (1, 2)]
        assert parallel_map(fingerprint_config, configs, jobs=2) == [
            fingerprint_config(c) for c in configs
        ]


class TestDedup:
    def test_duplicate_configs_resolve_to_one_run(self):
        runner = Orchestrator()
        a, b = tiny_config(seed=3), tiny_config(seed=4)
        artifacts = runner.run_many([a, b, tiny_config(seed=3)])
        assert artifacts[0] is artifacts[2]
        assert artifacts[0] is not artifacts[1]
        assert len(runner.cached()) == 2

    def test_same_seed_different_knobs_do_not_collide(self):
        # Regression: the old (scale, seed)-keyed module cache served
        # whichever config ran first. Content addressing must keep them
        # apart even when seed (and everything (scale, seed) encoded)
        # matches.
        runner = Orchestrator()
        base = tiny_config(seed=42)
        variant = tiny_config(seed=42, warm_copies_per_peer=0.0)
        one, two = runner.run_many([base, variant])
        assert one.fingerprint != two.fingerprint
        assert one.config == base
        assert two.config == variant
        # The knob matters: a cold start registers fewer pre-seeded copies,
        # so the traces genuinely differ — a collision would be visible.
        assert one.stats.as_dict() != two.stats.as_dict()


class TestResolutionOrder:
    def test_memory_hit_skips_the_disk(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        runner = Orchestrator(cache=cache)
        config = tiny_config(seed=6)
        first = runner.result(config)
        monkeypatch.setattr(cache, "get", lambda fp: pytest.fail(
            "memory hit must not touch the disk cache"))
        assert runner.result(config) is first

    def test_disk_hit_skips_the_run(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config(seed=7)
        Orchestrator(cache=cache).result(config)  # warm the disk

        def explode(*args, **kwargs):
            pytest.fail("disk hit must not re-run the scenario")

        monkeypatch.setattr(orchestrator_module, "run_scenario_artifact",
                            explode)
        fresh = Orchestrator(cache=cache)  # empty memory, same disk
        loaded = fresh.result(config)
        assert loaded.fingerprint == fingerprint_config(config)

    def test_run_lands_in_both_caches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = Orchestrator(cache=cache)
        config = tiny_config(seed=8)
        artifact = runner.result(config)
        assert artifact.fingerprint in runner.cached()
        assert cache.get(artifact.fingerprint) is not None

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Orchestrator(jobs=0)


class TestExperimentsLayerWiring:
    def test_configure_runner_keeps_the_artifact_store(self):
        import repro.experiments.common as common

        before = common.get_runner()
        try:
            config = tiny_config(seed=9)
            artifact = common.scenario_result(config)
            common.configure_runner(jobs=1)
            assert common.get_runner() is not before
            assert common.scenario_result(config) is artifact
        finally:
            common._RUNNER = before

    def test_planned_configs_default_and_planner(self):
        from repro.experiments import planned_configs
        from repro.experiments.common import standard_config

        # Default plan: the one standard trace.
        assert planned_configs("exp_table1", "small", 42) == [
            standard_config("small", 42)]
        # Planner-declared: exp_fig5 runs only its copies-diverse variant.
        fig5 = planned_configs("exp_fig5", "small", 42)
        assert len(fig5) == 1
        assert fig5[0] != standard_config("small", 42)
        # Self-contained experiments prefetch nothing.
        assert planned_configs("exp_lan_updates", "small", 42) == []
