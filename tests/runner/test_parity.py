"""Parity: the CLI renders byte-identical output at every --jobs width,
cold or warm — the orchestrator's one non-negotiable property.

The goldens pinned by ``tests/test_golden_parity.py`` anchor these runs to
the pre-orchestrator pipeline: the pooled path must reproduce not just
itself, but the exact bytes the serial in-process code always produced.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.experiments.common as common
import repro.runner.orchestrator as orchestrator_module
from repro.cli import main
from repro.runner import Orchestrator

pytestmark = pytest.mark.runner

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

#: exp_table1/exp_fig4 share the standard small trace; exp_fig5 plans its
#: own variant — two distinct scenarios, so --jobs really exercises the pool.
EXPERIMENTS = ["exp_table1", "exp_fig4", "exp_fig5"]


@pytest.fixture
def fresh_memo(monkeypatch):
    """Give the test its own (empty) artifact store, restored afterwards."""
    memo: dict = {}
    monkeypatch.setattr(common, "_ARTIFACTS", memo)
    monkeypatch.setattr(common, "_RUNNER", Orchestrator(memory=memo))
    return memo


def _run_cli(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


class TestJobsParity:
    def test_jobs1_and_jobs4_render_identical_bytes(self, fresh_memo,
                                                    tmp_path, capsys):
        serial = _run_cli(capsys, [
            "run", *EXPERIMENTS, "--scale", "small", "--jobs", "1",
            "--cache-dir", str(tmp_path / "serial")])
        fresh_memo.clear()  # second run must be cold too
        pooled = _run_cli(capsys, [
            "run", *EXPERIMENTS, "--scale", "small", "--jobs", "4",
            "--cache-dir", str(tmp_path / "pooled")])
        assert pooled == serial

        # And both anchor to the pre-orchestrator goldens.
        for golden in ("exp_table1_small_seed42.txt",
                       "exp_fig4_small_seed42.txt"):
            assert (GOLDEN_DIR / golden).read_text() in pooled

    def test_warm_cache_renders_identical_bytes_without_running(
            self, fresh_memo, tmp_path, capsys, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "exp_table1", "exp_fig4", "--scale", "small",
                "--jobs", "2", "--cache-dir", cache_dir]
        cold = _run_cli(capsys, argv)

        fresh_memo.clear()
        monkeypatch.setattr(
            orchestrator_module, "run_scenario_artifact",
            lambda config: pytest.fail(
                "warm run must be served from disk, not re-simulated"))
        warm = _run_cli(capsys, argv)
        assert warm == cold


@pytest.mark.slow
class TestFullStudyParity:
    def test_full_study_jobs1_vs_jobs4(self, fresh_memo, tmp_path, capsys):
        serial = _run_cli(capsys, [
            "study", "--scale", "small", "--jobs", "1",
            "--cache-dir", str(tmp_path / "serial")])
        fresh_memo.clear()
        pooled = _run_cli(capsys, [
            "study", "--scale", "small", "--jobs", "4",
            "--cache-dir", str(tmp_path / "pooled")])
        assert pooled == serial
