"""Fixtures and helpers for the scale-parity test layer.

The contract under test: the columnar population store and the region
sharder are pure *representation* changes — every byte of trace output is
identical to the object-graph, single-process seed implementation.  The
helpers here canonicalize a scenario's output into a digest that ignores
representation (object identity, pickle memoization, dict iteration quirks)
and captures values only.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import random

from repro.core.system import NetSessionSystem
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)
from repro.workload.catalog import build_catalog
from repro.workload.population import build_population


def build_store_world(store: str, seed: int = 11, **population_overrides):
    """Build a small system + population under one store implementation.

    Returns ``(system, catalog, population)``.  The catalog/provider setup
    mirrors :func:`repro.workload.scenario.run_scenario` so the population
    build consumes the exact same RNG streams a scenario would.
    """
    system = NetSessionSystem(seed=seed)
    catalog = build_catalog(
        random.Random(seed ^ 0xCA7), CatalogConfig(objects_per_provider=4)
    )
    for provider in catalog.providers:
        system.register_provider(provider)
    for obj in catalog.objects:
        system.publish(obj)
    cfg = PopulationConfig(store=store, **population_overrides)
    population = build_population(system, catalog.providers, cfg)
    return system, catalog, population


def tiny_scenario(seed: int = 5, **overrides) -> ScenarioConfig:
    """A sub-second scenario with a real trace (mirrors tests/runner)."""
    base = ScenarioConfig(
        seed=seed,
        duration_days=0.5,
        population=PopulationConfig(n_peers=120),
        demand=DemandConfig(total_downloads=150, duration_days=0.5),
        catalog=CatalogConfig(objects_per_provider=6),
    )
    return dataclasses.replace(base, **overrides) if overrides else base


def trace_digest(artifact) -> str:
    """Value-canonical digest of everything the analysis layer reads.

    Records are hashed one at a time: a whole-list pickle would also hash
    the object-sharing structure (in-process runs intern strings across
    records; pool workers don't), which is representation, not value.
    """
    h = hashlib.sha256()
    store = artifact.logstore
    for records in (store.downloads, store.logins, store.registrations):
        for rec in records:
            h.update(pickle.dumps(rec))
    for ip, record in sorted(artifact.geodb._records.items()):
        h.update(pickle.dumps((ip, record)))
    h.update(pickle.dumps(artifact.stats.as_dict()))
    h.update(pickle.dumps(sorted(artifact.mobility_census.items())))
    h.update(pickle.dumps(sorted(artifact.cloning_census.items())))
    h.update(pickle.dumps(artifact.finalized_downloads))
    return h.hexdigest()
