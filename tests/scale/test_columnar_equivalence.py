"""Property tests: the columnar store is the object graph, byte for byte.

Hypothesis drives population shapes (size, corporate sites, broken and
attacker fractions, seeds) through both store implementations and checks
field-for-field equality — first through dormant column reads (which must
not materialize anyone), then through full materialization (which must
reproduce the eager nodes' deep state: link capacities, RNG stream
positions, channel streams).
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from tests.scale.conftest import build_store_world  # noqa: E402

pytestmark = pytest.mark.scale

#: The dormant-readable attribute surface; every name must round-trip the
#: exact value an eagerly built PeerNode reports.
DORMANT_ATTRS = (
    "guid", "country_code", "geo_region", "asn", "network_region",
    "uploads_enabled", "installed_from_cp", "software_version",
    "piece_corruption_prob", "accounting_attacker", "adversary_profile",
    "online", "ip", "cn", "link_busy", "active_upload_count", "sessions",
    "boot_count", "setting_changes", "nat_rebinds", "uploads_done",
    "lan_id",
)

population_shapes = dict(
    seed=st.integers(0, 2**20),
    n_peers=st.integers(1, 50),
    corporate=st.sampled_from([0.0, 0.0, 0.25]),
    attacker=st.sampled_from([0.0, 0.1]),
    broken=st.sampled_from([0.0, 0.08]),
)


def _build_both(seed, n_peers, corporate, attacker, broken):
    overrides = dict(
        n_peers=n_peers,
        corporate_fraction=corporate,
        attacker_fraction=attacker,
        broken_fraction=broken,
    )
    return (
        build_store_world("object", seed, **overrides),
        build_store_world("columnar", seed, **overrides),
    )


@settings(max_examples=20, deadline=None)
@given(**population_shapes)
def test_build_is_field_for_field_equal_without_materializing(
    seed, n_peers, corporate, attacker, broken
):
    (sys_o, _, pop_o), (sys_c, _, pop_c) = _build_both(
        seed, n_peers, corporate, attacker, broken)
    store = pop_c.store
    assert store is not None and len(store) == pop_o.peer_count()

    for node, handle in zip(pop_o.iter_peers(), pop_c.iter_peers()):
        for attr in DORMANT_ATTRS:
            assert getattr(handle, attr) == getattr(node, attr), attr
        # Shared model objects intern by value-identity across systems.
        assert handle.country.code == node.country.code
        assert handle.city.name == node.city.name
        assert handle.asys.asn == node.asys.asn
        assert handle.nat_profile == node.nat_profile
    # The whole sweep above was served from columns.
    assert store.materialized_count() == 0

    # Population-level structures match.
    assert pop_c.always_on == pop_o.always_on
    assert dict(pop_c.tz_offset) == dict(pop_o.tz_offset)
    assert set(pop_c.sites) == set(pop_o.sites)

    # Every shared RNG stream ends the build at the identical position —
    # the property that makes everything downstream byte-identical.
    assert sys_c.rng.getstate() == sys_o.rng.getstate()
    assert sys_c.broadband._rng.getstate() == sys_o.broadband._rng.getstate()
    assert sys_c.nat_model._rng.getstate() == sys_o.nat_model._rng.getstate()
    # And the scheduled session workload is identical.
    assert sys_c.stats().as_dict() == sys_o.stats().as_dict()


@settings(max_examples=10, deadline=None)
@given(**population_shapes)
def test_materialization_reproduces_the_eager_nodes(
    seed, n_peers, corporate, attacker, broken
):
    (_, _, pop_o), (_, _, pop_c) = _build_both(
        seed, n_peers, corporate, attacker, broken)
    store = pop_c.store
    for node, handle in zip(pop_o.iter_peers(), pop_c.iter_peers()):
        link = handle.link  # forces materialization
        assert link.tier == node.link.tier
        assert link.down_bps == node.link.down_bps
        assert link.up_bps == node.link.up_bps
        assert link.downlink.name == node.link.downlink.name
        assert link.uplink.name == node.link.uplink.name
        assert handle.rng.getstate() == node.rng.getstate()
        assert handle.channel.rng.getstate() == node.channel.rng.getstate()
        assert handle.guid == node.guid
    assert store.materialized_count() == len(store)
    assert store.peak_materialized == len(store)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n_peers=st.integers(2, 40),
    sample_seed=st.integers(0, 99),
)
def test_sample_peers_selects_identical_victims(seed, n_peers, sample_seed):
    # rng.sample depends only on population size and order, so seeded
    # fault/adversary victim selection is store-independent — and the
    # columnar side must serve it without materializing anyone.
    (_, _, pop_o), (_, _, pop_c) = _build_both(seed, n_peers, 0.0, 0.0, 0.0)
    k = max(1, n_peers // 3)
    chosen_o = pop_o.sample_peers(random.Random(sample_seed), k)
    chosen_c = pop_c.sample_peers(random.Random(sample_seed), k)
    assert [p.guid for p in chosen_o] == [p.guid for p in chosen_c]
    assert pop_c.store.materialized_count() == 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n_peers=st.integers(2, 40),
    data=st.data(),
)
def test_materialize_mutate_release_round_trip(seed, n_peers, data):
    _, _, pop = build_store_world("columnar", seed, n_peers=n_peers)
    store = pop.store
    i = data.draw(st.integers(0, n_peers - 1), label="row")
    handle = store.handle(i)
    node = store.materialize(i)
    guid = node.guid

    # Mutate scalars, counters, and the private RNG stream position.
    node.uploads_enabled = not node.uploads_enabled
    node.piece_corruption_prob = 0.123
    node.boot_count += 3
    node.nat_rebinds += 2
    node.rng.random()
    expected_uploads = node.uploads_enabled
    expected_rng_state = node.rng.getstate()
    expected_channel_state = node.channel.rng.getstate()

    store.release(node)
    assert store.materialized_count() == 0
    assert guid not in store.system.peer_by_guid

    # Dormant reads now serve the reconciled values.
    assert handle.guid == guid
    assert handle.uploads_enabled is expected_uploads
    assert handle.piece_corruption_prob == 0.123
    assert handle.boot_count == 3
    assert handle.nat_rebinds == 2
    assert store.materialized_count() == 0

    # Re-materialization restores the full node state verbatim.
    node2 = store.materialize(i)
    assert node2.guid == guid
    assert node2.rng.getstate() == expected_rng_state
    assert node2.channel.rng.getstate() == expected_channel_state
    assert node2.boot_count == 3
    assert node2.uploads_enabled is expected_uploads
    assert store.system.peer_by_guid[guid] is node2
