"""Device-tier parity: heterogeneous classes are a pure leaf extension.

Two properties pin the tentpole down:

* **Build parity** — with a device mix enabled, the columnar store's
  packed device columns report the exact class, NAT override, always-on
  flag, and session schedule the eager object build produces, without
  materializing a single peer, and every shared RNG stream ends the
  build at the identical position.
* **Trace parity** — a whole tiered scenario (uplink caps, cache
  budgets, class-driven sessions, mobility and busy-hour modifiers all
  live) produces a byte-identical value-canonical trace under both
  stores.
"""

from __future__ import annotations

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.runner import run_scenario_artifact  # noqa: E402
from repro.workload.devices import PRESET_MIXES, default_mix  # noqa: E402

from tests.scale.conftest import (  # noqa: E402
    build_store_world, tiny_scenario, trace_digest,
)
from tests.scale.test_columnar_equivalence import DORMANT_ATTRS  # noqa: E402

pytestmark = pytest.mark.scale

#: Device fields readable without materializing (``device`` returns the
#: interned DeviceClass itself; ``device_class`` its name).
DEVICE_ATTRS = DORMANT_ATTRS + ("device", "device_class")

device_shapes = dict(
    seed=st.integers(0, 2**20),
    n_peers=st.integers(1, 50),
    mix_name=st.sampled_from(["balanced", "router_heavy", "mobile_heavy"]),
    attacker=st.sampled_from([0.0, 0.1]),
    cap=st.sampled_from([None, 10]),
)


def _build_both(seed, n_peers, mix_name, attacker, cap):
    overrides = dict(
        n_peers=n_peers,
        device=PRESET_MIXES[mix_name](),
        attacker_fraction=attacker,
        active_peer_cap=cap,
    )
    return (
        build_store_world("object", seed, **overrides),
        build_store_world("columnar", seed, **overrides),
    )


@settings(max_examples=20, deadline=None)
@given(**device_shapes)
def test_tiered_build_is_dormant_equal(seed, n_peers, mix_name, attacker, cap):
    (sys_o, _, pop_o), (sys_c, _, pop_c) = _build_both(
        seed, n_peers, mix_name, attacker, cap)
    store = pop_c.store
    assert store is not None and len(store) == pop_o.peer_count()

    for node, handle in zip(pop_o.iter_peers(), pop_c.iter_peers()):
        for attr in DEVICE_ATTRS:
            assert getattr(handle, attr) == getattr(node, attr), attr
        # Class NAT overrides (smartrouter port-forwarding) must agree.
        assert handle.nat_profile == node.nat_profile
    # The whole sweep above — device columns included — was dormant.
    assert store.materialized_count() == 0

    # Tier bookkeeping matches: census, guid→class map, always-on set
    # (class always_on_prob ORs into the base draw), session schedule.
    assert pop_c.device_census() == pop_o.device_census()
    assert pop_c.device_classes() == pop_o.device_classes()
    assert pop_c.always_on == pop_o.always_on
    assert dict(pop_c.tz_offset) == dict(pop_o.tz_offset)
    assert sys_c.stats().as_dict() == sys_o.stats().as_dict()

    # Device draws consume the same stream positions in both builds.
    assert sys_c.rng.getstate() == sys_o.rng.getstate()
    assert sys_c.broadband._rng.getstate() == sys_o.broadband._rng.getstate()
    assert sys_c.nat_model._rng.getstate() == sys_o.nat_model._rng.getstate()


@settings(max_examples=10, deadline=None)
@given(**device_shapes)
def test_tiered_materialization_reproduces_the_eager_nodes(
    seed, n_peers, mix_name, attacker, cap
):
    (_, _, pop_o), (_, _, pop_c) = _build_both(
        seed, n_peers, mix_name, attacker, cap)
    for node, handle in zip(pop_o.iter_peers(), pop_c.iter_peers()):
        link = handle.link  # forces materialization
        assert link.up_bps == node.link.up_bps
        assert handle.device == node.device
        assert handle.upload_rate_cap() == node.upload_rate_cap()
        assert handle.rng.getstate() == node.rng.getstate()
    assert pop_c.store.materialized_count() == len(pop_c.store)


def _tiered(**overrides):
    base = tiny_scenario()
    return dataclasses.replace(
        base,
        population=dataclasses.replace(base.population, device=default_mix()),
        **overrides,
    )


def test_tiered_trace_is_store_independent(monkeypatch):
    monkeypatch.setenv("REPRO_POPULATION_STORE", "object")
    obj = run_scenario_artifact(_tiered())
    monkeypatch.setenv("REPRO_POPULATION_STORE", "columnar")
    col = run_scenario_artifact(_tiered())
    assert trace_digest(obj) == trace_digest(col)
    # The artifact's device record (census + guid→class) agrees too.
    assert obj.devices == col.devices
    assert obj.devices["census"]
