"""Class-filtered population scans: store- and width-independent.

``iter_peers(device_class=...)`` and ``sample_peers(..., device_class=...)``
are the sanctioned ways to touch one tier; they must pick the identical
creation-order peers whichever store backs the population, stay dormant
on the columnar store, and survive region sharding (a tiered scenario's
trace is the same at any shard width).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.runner import run_scenario_artifact
from repro.workload.devices import default_mix, router_heavy
from repro.workload.sharding import ShardingConfig

from tests.scale.conftest import build_store_world, tiny_scenario, trace_digest

pytestmark = pytest.mark.scale

CLASSES = ("desktop", "smartrouter", "mobile", "settop")


def _both(**overrides):
    return (
        build_store_world("object", 11, **overrides)[2],
        build_store_world("columnar", 11, **overrides)[2],
    )


@pytest.mark.parametrize("cap", [None, 12])
def test_filtered_iteration_matches_across_stores(cap):
    pop_o, pop_c = _both(n_peers=60, device=default_mix(),
                         active_peer_cap=cap)
    for cls in CLASSES:
        obj_guids = [p.guid for p in pop_o.iter_peers(device_class=cls)]
        col_guids = [p.guid for p in pop_c.iter_peers(device_class=cls)]
        assert col_guids == obj_guids
    # Per-class scans partition the population exactly.
    total = sum(
        len(list(pop_c.iter_peers(device_class=cls))) for cls in CLASSES)
    assert total == pop_c.peer_count()
    # Filtering reads the device column only — nobody materialized.
    assert pop_c.store.materialized_count() == 0


def test_filtered_iteration_without_tiers_is_all_desktop():
    pop_o, pop_c = _both(n_peers=20)
    for pop in (pop_o, pop_c):
        assert len(list(pop.iter_peers(device_class="desktop"))) == 20
        assert list(pop.iter_peers(device_class="mobile")) == []


@pytest.mark.parametrize("cls", ["smartrouter", "mobile"])
def test_filtered_sampling_draws_the_same_peers(cls):
    pop_o, pop_c = _both(n_peers=60, device=router_heavy())
    obj_pick = pop_o.sample_peers(random.Random(7), 5, device_class=cls)
    col_pick = pop_c.sample_peers(random.Random(7), 5, device_class=cls)
    assert [p.guid for p in col_pick] == [p.guid for p in obj_pick]
    assert all(p.device_class == cls for p in col_pick)
    # The draw depends only on the filtered tier size, so it consumes the
    # same RNG stream either way; an oversized k clamps to the tier.
    tier = len(list(pop_c.iter_peers(device_class=cls)))
    big = pop_c.sample_peers(random.Random(3), tier + 50, device_class=cls)
    assert len(big) == tier
    assert pop_c.store.materialized_count() == 0


def test_unfiltered_sampling_is_unchanged_by_the_device_leaf():
    # device=None populations must draw exactly as before the tier work:
    # one rng.sample over the creation-order index space.
    pop_o, pop_c = _both(n_peers=40)
    obj_pick = pop_o.sample_peers(random.Random(9), 6)
    col_pick = pop_c.sample_peers(random.Random(9), 6)
    assert [p.guid for p in col_pick] == [p.guid for p in obj_pick]


def _tiered_sharded(shards: int):
    base = tiny_scenario()
    return dataclasses.replace(
        base,
        population=dataclasses.replace(base.population, device=default_mix()),
        sharding=ShardingConfig(shards=shards),
    )


def test_shard_width_does_not_change_the_tiered_trace():
    a1 = run_scenario_artifact(_tiered_sharded(1))
    a4 = run_scenario_artifact(_tiered_sharded(4))
    assert trace_digest(a1) == trace_digest(a4)
    # Device records merge across shards: same census, same class map.
    assert a1.devices["census"] == a4.devices["census"]
    assert a1.devices["classes"] == a4.devices["classes"]
    assert sum(a1.devices["census"].values()) == \
        a1.config.population.n_peers
