"""Lazy-materialization edge cases: faults, adversaries, and defense on
dormant peers.

The dangerous paths are the ones that reach *around* the demand loop and
touch peers directly — fault injectors, adversarial infestation, the
reputation/quarantine engine.  Each must either be served by dormant
column reads or transparently materialize, and a strict invariant audit
must stay clean throughout.
"""

from __future__ import annotations

import pytest

from repro.adversary import AdversaryConfig
from repro.core.config import DefenseConfig, SystemConfig
from repro.faults.spec import AdversarialInfestation, RegionPartition
from repro.workload import PopulationConfig
from repro.workload.scenario import run_scenario

from tests.scale.conftest import build_store_world, tiny_scenario

pytestmark = pytest.mark.scale

HOUR = 3600.0


class TestDormantReadsAndRelease:
    def test_dormant_reads_do_not_materialize(self):
        _, _, pop = build_store_world("columnar", seed=3, n_peers=12)
        store = pop.store
        for peer in pop.iter_peers():
            peer.guid, peer.network_region, peer.online, peer.boot_count
        assert store.materialized_count() == 0
        assert store.peak_materialized == 0

    def test_setattr_materializes(self):
        _, _, pop = build_store_world("columnar", seed=3, n_peers=12)
        store = pop.store
        handle = store.handle(0)
        handle.uploads_enabled = False
        assert store.materialized_count() == 1
        assert store.peak_materialized == 1

    def test_release_refuses_online_peer(self):
        _, _, pop = build_store_world("columnar", seed=3, n_peers=12)
        store = pop.store
        node = store.materialize(0)
        node.boot()
        with pytest.raises(ValueError, match="online"):
            store.release(node)

    def test_release_refuses_peer_with_cache(self):
        _, catalog, pop = build_store_world("columnar", seed=3, n_peers=12)
        store = pop.store
        node = store.materialize(0)
        node.cache[catalog.objects[0].cid] = object()
        with pytest.raises(ValueError, match="cache"):
            store.release(node)

    def test_peak_materialized_tracks_high_water_mark(self):
        _, _, pop = build_store_world("columnar", seed=3, n_peers=12)
        store = pop.store
        nodes = [store.materialize(i) for i in range(5)]
        for node in nodes:
            store.release(node)
        store.materialize(0)
        assert store.materialized_count() == 1
        assert store.peak_materialized == 5


class TestFaultsOnDormantPeers:
    def test_region_partition_strict_with_dormant_peers(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "strict")
        cfg = tiny_scenario(
            seed=9,
            population=PopulationConfig(n_peers=120, store="columnar"),
            faults=(
                RegionPartition(
                    "partition", start=2 * HOUR, duration=3 * HOUR,
                    region="eu",
                ),
            ),
        )
        result = run_scenario(cfg)
        assert not result.system.auditor.violations
        # The sweep read network_region dormantly on everyone; only the
        # affected region (plus demand-touched peers) came into existence.
        store = result.population.store
        assert 0 < store.materialized_count() <= len(store)

    def test_adversarial_infestation_on_dormant_peers_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "strict")
        cfg = tiny_scenario(
            seed=9,
            population=PopulationConfig(n_peers=120, store="columnar"),
            faults=(
                AdversarialInfestation(
                    "infest", start=1 * HOUR, duration=6 * HOUR,
                    fraction=0.1, profile="free_rider",
                ),
            ),
        )
        result = run_scenario(cfg)
        assert not result.system.auditor.violations
        # Victims were drawn from the full universe (dormant included) and
        # recorded as ground truth even after the cleanup reverted them.
        assert result.system.adversary_truth
        assert set(result.system.adversary_truth.values()) == {"free_rider"}

    def test_defense_engine_with_lazy_peers_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "strict")
        cfg = tiny_scenario(
            seed=21,
            population=PopulationConfig(n_peers=120, store="columnar"),
            adversary=AdversaryConfig(fraction=0.15),
            system=SystemConfig(defense=DefenseConfig(enabled=True)),
        )
        result = run_scenario(cfg)
        assert not result.system.auditor.violations
        assert result.system.reputation is not None


class TestActivePeerCap:
    def test_capped_run_stays_clean_and_mostly_dormant(self, monkeypatch):
        # With a cap, only a seeded subset gets boot schedules; everyone
        # else exists as columns until demand summons them.  The run must
        # stay strict-clean and never materialize the whole population.
        monkeypatch.setenv("REPRO_INVARIANTS", "strict")
        from repro.workload import DemandConfig

        cfg = tiny_scenario(
            seed=13,
            duration_days=0.25,
            population=PopulationConfig(
                n_peers=200, store="columnar", active_peer_cap=20
            ),
            demand=DemandConfig(total_downloads=40, duration_days=0.25),
        )
        result = run_scenario(cfg)
        assert not result.system.auditor.violations
        store = result.population.store
        assert store.peak_materialized < len(store)
        assert result.logstore.downloads
