"""The scaling-curve runner and its BENCH_scale.json trajectory."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.exp_scale import bench_name, record_curve, run_curve

pytestmark = pytest.mark.scale


def test_bench_name_buckets():
    assert bench_name(1_000_000) == "scale_1m"
    assert bench_name(100_000) == "scale_100k"
    assert bench_name(2_000) == "scale_2k"
    assert bench_name(1_500) == "scale_1500"


def test_run_curve_entries_are_gateable(tmp_path):
    output, results = run_curve([2_000], seed=7, days=0.5, shards=2)
    entry = results["scale_2k"]
    # The gate reads wall_seconds at the entry's top level.
    assert entry["wall_seconds"] > 0
    assert entry["peers"] == 2_000
    assert entry["shards"] == 2
    assert entry["downloads"] > 0
    assert "scale_2k" in output.metrics
    assert "2,000" in output.text

    path = tmp_path / "BENCH_scale.json"
    record_curve(results, path)
    record_curve(results, path)  # second merge appends to history
    data = json.loads(path.read_text())
    assert data["scale_2k"]["peers"] == 2_000
    assert len(data["history"]["scale_2k"]) == 2


def test_cli_scale_command(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main([
        "scale", "--peers", "2000", "--days", "0.5",
        "--shards", "2", "--out", str(out_path),
    ]) == 0
    printed = capsys.readouterr().out
    assert "peers" in printed and "2,000" in printed
    assert json.loads(out_path.read_text())["scale_2k"]["peers"] == 2_000


def test_cli_scale_rejects_bad_shards(capsys):
    assert main(["scale", "--peers", "2000", "--shards", "lots"]) == 2
