"""Scale-parity: golden experiments and sharded runs vs the seed semantics.

Two independence properties close the loop on the tentpole:

* **Store independence** — the flagship experiments render byte-identical
  text whether the population lives in the object graph or the columnar
  store.  ``store`` resolves into the config fingerprint, so the two runs
  can share one memo without colliding.
* **Width independence** — a region-sharded scenario produces the same
  value-canonical trace whether its shards run in-process (``shards=1``)
  or fanned across a process pool (``shards=4``), and whichever store the
  shard workers use.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import common, exp_fig4, exp_table1, exp_vod_policies
from repro.runner import Orchestrator, run_scenario_artifact
from repro.workload.sharding import ShardingConfig

from tests.scale.conftest import tiny_scenario, trace_digest

pytestmark = pytest.mark.scale


@pytest.fixture
def fresh_memo(monkeypatch):
    """Give the test its own (empty) artifact store, restored afterwards."""
    memo: dict = {}
    monkeypatch.setattr(common, "_ARTIFACTS", memo)
    monkeypatch.setattr(common, "_RUNNER", Orchestrator(memory=memo))
    return memo


@pytest.mark.parametrize("module", [
    exp_table1,
    exp_fig4,
    # The policy sweep runs four full scenarios per store; keep it out of
    # the tier-1 wall clock.
    pytest.param(exp_vod_policies, marks=pytest.mark.slow),
])
def test_experiment_text_is_store_independent(module, fresh_memo, monkeypatch):
    monkeypatch.setenv("REPRO_POPULATION_STORE", "object")
    object_text = module.run("small", 42).text
    monkeypatch.setenv("REPRO_POPULATION_STORE", "columnar")
    columnar_text = module.run("small", 42).text
    assert columnar_text == object_text


def _sharded(shards: int):
    return tiny_scenario(sharding=ShardingConfig(shards=shards))


def test_shard_width_does_not_change_the_trace():
    a1 = run_scenario_artifact(_sharded(1))
    a4 = run_scenario_artifact(_sharded(4))
    assert trace_digest(a1) == trace_digest(a4)
    # Only the execution-width bookkeeping may differ.
    assert a1.sharding["shards"] == 1 and a4.sharding["shards"] == 4
    assert a1.sharding["regions"] == a4.sharding["regions"]
    assert a1.sharding["peers_per_region"] == a4.sharding["peers_per_region"]


def test_shard_reconciliation_is_clean():
    art = run_scenario_artifact(_sharded(2))
    reconcile = art.sharding["reconcile"]
    assert reconcile["guid_overlap"] == 0
    assert reconcile["cross_region_peer_bytes"] == 0
    assert sum(
        r["peers"] for r in reconcile["per_region"].values()
    ) == art.config.population.n_peers


def test_sharded_run_is_store_independent(monkeypatch):
    monkeypatch.setenv("REPRO_POPULATION_STORE", "object")
    obj = run_scenario_artifact(_sharded(2))
    monkeypatch.setenv("REPRO_POPULATION_STORE", "columnar")
    col = run_scenario_artifact(_sharded(2))
    assert trace_digest(obj) == trace_digest(col)


def test_sharded_and_unsharded_agree_on_totals():
    # Sharding factors the *workload* per region, so per-record traces
    # legitimately differ from the unsharded run — but conservation holds:
    # every download lands, every region keeps its apportioned peers.
    cfg = tiny_scenario()
    flat = run_scenario_artifact(cfg)
    shard = run_scenario_artifact(
        dataclasses.replace(cfg, sharding=ShardingConfig(shards=2))
    )
    assert len(shard.logstore.downloads) == len(flat.logstore.downloads)
    assert sum(shard.sharding["peers_per_region"].values()) == \
        cfg.population.n_peers
