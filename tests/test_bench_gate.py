"""Tests for the benchmark trajectory recorder and the CI regression gate.

The gate is itself CI infrastructure: a bug here silently waves real
regressions through (or blocks every PR), so its pass/fail/misconfigured
paths and the trajectory file's shape are pinned like any other output.
"""

from __future__ import annotations

import json

import pytest

from benchmarks._results import HISTORY_LIMIT, record_results, wall_seconds
from benchmarks.gate import run_gate


class TestRecordResults:
    def test_latest_values_stay_at_top_level(self, tmp_path):
        path = tmp_path / "bench.json"
        record_results({"swarm": {"wall_seconds": 1.5}}, path=path)
        data = json.loads(path.read_text())
        assert data["swarm"]["wall_seconds"] == 1.5

    def test_history_appends_per_bench(self, tmp_path):
        path = tmp_path / "bench.json"
        record_results({"swarm": {"wall_seconds": 1.5}}, path=path)
        record_results({"swarm": {"wall_seconds": 1.2}}, path=path)
        data = json.loads(path.read_text())
        assert data["swarm"]["wall_seconds"] == 1.2  # latest wins
        series = data["history"]["swarm"]
        assert [e["wall_seconds"] for e in series] == [1.5, 1.2]
        assert all("recorded" in e for e in series)

    def test_other_benches_survive_a_merge(self, tmp_path):
        path = tmp_path / "bench.json"
        record_results({"swarm": {"wall_seconds": 1.5}}, path=path)
        record_results({"vod": {"wall_seconds": 0.8}}, path=path)
        data = json.loads(path.read_text())
        assert data["swarm"]["wall_seconds"] == 1.5
        assert data["vod"]["wall_seconds"] == 0.8
        assert set(data["history"]) == {"swarm", "vod"}

    def test_history_is_capped(self, tmp_path):
        path = tmp_path / "bench.json"
        for i in range(HISTORY_LIMIT + 5):
            record_results({"swarm": {"wall_seconds": float(i)}}, path=path)
        series = json.loads(path.read_text())["history"]["swarm"]
        assert len(series) == HISTORY_LIMIT
        # Oldest entries dropped, newest kept.
        assert series[-1]["wall_seconds"] == float(HISTORY_LIMIT + 4)

    def test_empty_results_write_nothing(self, tmp_path):
        path = tmp_path / "bench.json"
        record_results({}, path=path)
        assert not path.exists()


class TestWallSeconds:
    def test_flat_entry(self):
        assert wall_seconds({"wall_seconds": 2.5}) == 2.5

    def test_nested_production_block(self):
        assert wall_seconds({"batched": {"wall_seconds": 1.0},
                             "reference": {"wall_seconds": 9.0}}) == 1.0
        assert wall_seconds({"numpy": {"wall_seconds": 0.5},
                             "python": {"wall_seconds": 2.0}}) == 0.5

    def test_no_wall_metric(self):
        assert wall_seconds({"overhead_fraction": 0.01}) is None


class TestRunGate:
    BASE = {"swarm": {"batched": {"wall_seconds": 2.0}},
            "vod": {"wall_seconds": 1.0}}

    def test_within_tolerance_passes(self, capsys):
        current = {"swarm": {"batched": {"wall_seconds": 2.4}},
                   "vod": {"wall_seconds": 1.2}}
        assert run_gate(self.BASE, current, ["swarm", "vod"], 0.25) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_regression_fails(self, capsys):
        current = {"swarm": {"batched": {"wall_seconds": 3.0}},
                   "vod": {"wall_seconds": 1.0}}
        assert run_gate(self.BASE, current, ["swarm", "vod"], 0.25) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_improvement_passes(self):
        current = {"swarm": {"batched": {"wall_seconds": 0.5}},
                   "vod": {"wall_seconds": 0.4}}
        assert run_gate(self.BASE, current, ["swarm", "vod"], 0.25) == 0

    def test_missing_bench_is_a_config_error(self):
        assert run_gate(self.BASE, self.BASE, ["nonexistent"], 0.25) == 2

    def test_ungateable_entry_is_a_config_error(self):
        base = {"overhead": {"overhead_fraction": 0.01}}
        assert run_gate(base, base, ["overhead"], 0.25) == 2
