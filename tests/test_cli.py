"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--scale", "galactic"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "exp_nonsense"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["run", "exp_offload", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "offload summary" in out
        assert "peer efficiency" in out

    def test_trace_exports_files(self, tmp_path, capsys):
        assert main(["trace", "--out", str(tmp_path / "t"),
                     "--scale", "small", "--seed", "7"]) == 0
        for name in ("downloads", "logins", "registrations", "geolocation"):
            assert (tmp_path / "t" / f"{name}.jsonl").exists()


class TestFaultsCommand:
    def test_list_scenarios(self, capsys):
        from repro.faults import scenario_names

        assert main(["faults", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_unknown_scenario_fails(self, capsys):
        assert main(["faults", "--scenario", "meteor_strike"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_drill_output_is_deterministic(self, capsys):
        args = ["faults", "--scenario", "dn_wipe", "--seed", "7",
                "--duration", "600"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "injection timeline" in first
        assert "recovery metrics" in first


class TestPerfCommand:
    def test_perf_prints_counter_table(self, capsys):
        assert main(["perf", "--scale", "small", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "wall_seconds" in out
        assert "flow_waterfill_calls" in out
        assert "pending_events" in out

    def test_run_perf_flag_appends_counters_after_tables(self, capsys):
        assert main(["run", "exp_offload", "--scale", "small", "--perf"]) == 0
        out = capsys.readouterr().out
        # Counters come strictly after the experiment's own output, so the
        # paper-style text (and its goldens) is unchanged by --perf.
        assert out.index("offload summary") < out.index("perf counters")
        assert "flow_waterfill_calls" in out

    def test_perf_json_emits_machine_readable_counters(self, capsys):
        import json

        assert main(["perf", "--scale", "small", "--seed", "7",
                     "--kernel", "python", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "python"
        assert data["scale"] == "small"
        assert data["flow_waterfill_calls"] > 0
        assert data["wall_seconds"] >= 0

    def test_perf_kernel_header_reports_resolved_kernel(self, capsys):
        assert main(["perf", "--scale", "small", "--seed", "7",
                     "--kernel", "numpy"]) == 0
        assert "kernel=numpy" in capsys.readouterr().out

    def test_perf_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--kernel", "fortran"])


class TestFaultsJSONFlag:
    def test_json_flag_emits_machine_readable_report(self, capsys):
        import json

        args = ["faults", "--scenario", "control_message_loss", "--seed", "7",
                "--duration", "1200", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        data = json.loads(first)
        assert data["scenario"] == "control_message_loss"
        assert data["channel"]["lost_messages"] > 0
        assert main(args) == 0
        assert capsys.readouterr().out == first  # byte-stable for CI diffs


def _tiny_config(seed: int = 5):
    """A sub-100ms scenario: just enough to populate the result cache."""
    from repro.workload import (
        CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
    )

    return ScenarioConfig(
        seed=seed,
        duration_days=0.5,
        population=PopulationConfig(n_peers=60),
        demand=DemandConfig(total_downloads=50, duration_days=0.5),
        catalog=CatalogConfig(objects_per_provider=6),
    )


class TestCacheCommand:
    def test_ls_on_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "cache empty" in capsys.readouterr().out

    def test_ls_verify_clear_roundtrip(self, tmp_path, capsys):
        from repro.runner import Orchestrator, ResultCache

        Orchestrator(cache=ResultCache(tmp_path)).run_many([_tiny_config()])

        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out

        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "ok: 1 entries verified" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "cache empty" in capsys.readouterr().out

    def test_verify_flags_corruption_and_exits_nonzero(self, tmp_path, capsys):
        from repro.runner import Orchestrator, ResultCache

        Orchestrator(cache=ResultCache(tmp_path)).run_many([_tiny_config()])
        payload = next(tmp_path.rglob("*.pkl"))
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))

        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.err
        assert "1 of 1 entries corrupt" in captured.out


class TestFaultsAllFlag:
    def test_all_runs_library_in_order_and_parallel_matches_serial(
            self, monkeypatch, capsys):
        import json

        import repro.faults as faults_pkg
        import repro.faults.scenarios as scenarios_module

        # Trim the library to two scenarios so the drill matrix stays
        # tier-1 cheap; the full 13-scenario run is CI's fault-smoke job.
        subset = {name: scenarios_module.SCENARIOS[name]
                  for name in ("dn_wipe", "cn_flap")}
        monkeypatch.setattr(scenarios_module, "SCENARIOS", subset)
        monkeypatch.setattr(faults_pkg, "SCENARIOS", subset)

        base = ["faults", "--all", "--seed", "7", "--duration", "600",
                "--json"]
        assert main(base + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        pooled = capsys.readouterr().out

        assert serial == pooled  # byte-identical at any pool width
        data = json.loads(serial)
        assert [d["scenario"] for d in data] == ["dn_wipe", "cn_flap"]


class TestVodCommand:
    def test_parser_accepts_the_sweep_flags(self):
        args = build_parser().parse_args(
            ["vod", "--scale", "small", "--seed", "7", "--jobs", "2",
             "--json"])
        assert args.command == "vod"
        assert args.scale == "small"
        assert args.seed == 7
        assert args.jobs == 2
        assert args.json_report

    def test_vod_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vod", "--scale", "galactic"])

    @pytest.mark.slow
    def test_json_report_is_byte_stable_across_pool_widths(
            self, tmp_path, capsys, monkeypatch):
        import json

        import repro.experiments.common as common
        from repro.runner import Orchestrator

        def cold_run(jobs, cache):
            # Own empty memo per run: --jobs must not lean on leftovers.
            memo: dict = {}
            monkeypatch.setattr(common, "_ARTIFACTS", memo)
            monkeypatch.setattr(common, "_RUNNER", Orchestrator(memory=memo))
            assert main(["vod", "--scale", "small", "--jobs", str(jobs),
                         "--json", "--cache-dir", str(tmp_path / cache)]) == 0
            return capsys.readouterr().out

        serial = cold_run(1, "serial")
        pooled = cold_run(4, "pooled")
        assert pooled == serial
        report = json.loads(serial)
        assert report["name"] == "vod_policies"
        assert report["metrics"]["unrestricted_peak_transit_bytes"] > 0


class TestAuditCommand:
    def test_audit_drill_prints_report(self, capsys):
        args = ["audit", "--scenario", "dn_wipe", "--seed", "7",
                "--duration", "600"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "invariant audit" in out
        assert "mode" in out

    def test_audit_unknown_scenario_fails(self, capsys):
        assert main(["audit", "--scenario", "meteor_strike"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_audit_strict_drill_exits_clean(self, capsys):
        # The library scenarios are sanitizer-clean, so strict mode is a
        # successful run, not an error exit.
        args = ["audit", "--scenario", "cn_flap", "--seed", "7",
                "--duration", "600", "--strict"]
        assert main(args) == 0
        assert "strict" in capsys.readouterr().out

    def test_audit_json_is_machine_readable(self, capsys):
        import json

        args = ["audit", "--scenario", "dn_wipe", "--seed", "7",
                "--duration", "600", "--json"]
        assert main(args) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] == 0
        assert "violations" in data

    def test_audit_every_flag_tightens_cadence(self, capsys):
        import json

        base = ["audit", "--scenario", "dn_wipe", "--seed", "7",
                "--duration", "600", "--json"]
        assert main(base) == 0
        sparse = json.loads(capsys.readouterr().out)
        assert main(base + ["--every", "50"]) == 0
        dense = json.loads(capsys.readouterr().out)
        assert dense["audits"] > sparse["audits"]
