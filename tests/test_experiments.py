"""Smoke tests for the experiment runners.

Each runner must produce renderable output and its advertised metrics on
the small scale.  The scenario cache in ``experiments.common`` makes the
whole module cost one small simulation.
"""

from __future__ import annotations

import importlib

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentOutput, standard_config
from repro.experiments.common import standard_result

#: Experiments that run extra scenarios of their own (exercised by the
#: benchmark suite; too slow to repeat here).
HEAVY = {"exp_baselines", "exp_ablation_locality", "exp_ablation_backstop",
         "exp_ablation_prefetch", "exp_fig5", "exp_lan_updates",
         "exp_mobility", "exp_fig12", "exp_fault_matrix",
         "exp_vod_policies"}

LIGHT = [name for name in ALL_EXPERIMENTS if name not in HEAVY]


class TestScales:
    def test_known_scales_resolve(self):
        for scale in ("small", "standard", "mobility"):
            cfg = standard_config(scale)
            assert cfg.population.n_peers > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            standard_config("galactic")

    def test_result_cached_per_scale_and_seed(self):
        a = standard_result("small", 42)
        b = standard_result("small", 42)
        assert a is b


@pytest.mark.parametrize("name", LIGHT)
def test_runner_produces_output(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    out = module.run("small", 42)
    assert isinstance(out, ExperimentOutput)
    assert out.name
    assert len(out.text) > 40
    assert out.metrics
    for key, value in out.metrics.items():
        assert isinstance(value, (int, float)), key
