"""Golden-seed parity: experiment output pinned byte-for-byte.

The allocation engine's hard constraint is that batching must not move a
single float in the fixed-seed experiment pipeline.  These goldens were
rendered by the pre-batching per-mutation engine; the current engine must
reproduce them exactly.  If an intentional modelling change breaks them,
regenerate with::

    PYTHONPATH=src python -c "
    from repro.experiments import exp_table1, exp_fig4
    open('tests/golden/exp_table1_small_seed42.txt', 'w').write(exp_table1.run('small', 42).text)
    open('tests/golden/exp_fig4_small_seed42.txt', 'w').write(exp_fig4.run('small', 42).text)"
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import exp_fig4, exp_table1

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("module, golden", [
    (exp_table1, "exp_table1_small_seed42.txt"),
    (exp_fig4, "exp_fig4_small_seed42.txt"),
])
def test_small_scale_output_is_byte_identical(module, golden):
    expected = (GOLDEN_DIR / golden).read_text()
    assert module.run("small", 42).text == expected


@pytest.mark.parametrize("store", ["object", "columnar"])
def test_goldens_are_store_independent(store, monkeypatch):
    """Both population stores must reproduce the goldens exactly.

    The goldens were rendered by the eager object-graph population; the
    columnar store's contract is byte-identical traces, so the same bytes
    must come out whichever store the ``auto`` default resolves to.
    """
    monkeypatch.setenv("REPRO_POPULATION_STORE", store)
    expected = (GOLDEN_DIR / "exp_table1_small_seed42.txt").read_text()
    assert exp_table1.run("small", 42).text == expected


@pytest.mark.parametrize("kernel", ["python", "numpy"])
def test_goldens_are_kernel_independent(kernel, monkeypatch):
    """Both water-filling kernels must reproduce the goldens exactly.

    The goldens were rendered by the python reference; the vectorized
    kernel's admission contract is bit-identical rates, so the same bytes
    must come out whichever kernel the ``auto`` default resolves to.
    """
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    expected = (GOLDEN_DIR / "exp_table1_small_seed42.txt").read_text()
    assert exp_table1.run("small", 42).text == expected
