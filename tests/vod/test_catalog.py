"""Catalog structure, determinism, and popularity decay."""

from __future__ import annotations

import random

import pytest

from repro.vod import VOD_CP_CODE, VodConfig, build_vod_catalog


@pytest.fixture
def config():
    return VodConfig(n_series=4, episodes_per_series=5)


@pytest.fixture
def catalog(config):
    return build_vod_catalog(random.Random("t"), config)


class TestStructure:
    def test_counts_match_config(self, catalog, config):
        assert len(catalog.series) == config.n_series
        assert len(catalog.episodes()) == (
            config.n_series * config.episodes_per_series)

    def test_episodes_are_p2p_vod_objects(self, catalog):
        for ep in catalog.episodes():
            assert ep.obj.p2p_enabled
            assert ep.obj.provider.cp_code == VOD_CP_CODE
            assert ep.obj.size == VodConfig().episode_bytes

    def test_release_schedule_ends_at_trace_start(self, catalog, config):
        for series in catalog.series:
            days = [ep.release_day for ep in series.episodes]
            assert days == sorted(days)
            assert days[-1] == 0.0  # newest episode airs at the window open
            assert days[0] == -(config.episodes_per_series - 1) * \
                config.release_spacing_days

    def test_cids_are_unique(self, catalog):
        cids = [ep.obj.cid for ep in catalog.episodes()]
        assert len(set(cids)) == len(cids)


class TestDeterminism:
    def test_same_rng_seed_same_catalog(self, config):
        a = build_vod_catalog(random.Random("x"), config)
        b = build_vod_catalog(random.Random("x"), config)
        assert [s.audience_weight for s in a.series] == \
            [s.audience_weight for s in b.series]
        assert [ep.obj.cid for ep in a.episodes()] == \
            [ep.obj.cid for ep in b.episodes()]


class TestPopularity:
    def test_newer_episodes_weigh_more_within_a_series(self, catalog, config):
        weights = catalog.weights(config)
        per_series = config.episodes_per_series
        first_series = weights[:per_series]
        assert first_series == sorted(first_series)  # decay: older is lighter

    def test_half_life_is_honoured(self, catalog, config):
        weights = catalog.weights(config)
        series = catalog.series[0]
        for older, newer in zip(series.episodes, series.episodes[1:]):
            ratio = (weights[newer.index] / weights[older.index])
            expected = 2.0 ** (
                config.release_spacing_days / config.decay_half_life_days)
            assert ratio == pytest.approx(expected)

    def test_hit_series_outweigh_the_tail(self, catalog):
        assert catalog.series[0].audience_weight > \
            catalog.series[-1].audience_weight


class TestLookups:
    def test_episode_by_cid_round_trips(self, catalog):
        ep = catalog.episodes()[7]
        assert catalog.episode_by_cid(ep.obj.cid) is ep
        assert catalog.episode_by_cid("no-such-cid") is None

    def test_next_episode_walks_the_series(self, catalog):
        series = catalog.series[0]
        assert catalog.next_episode(series.episodes[0]) is series.episodes[1]
        assert catalog.next_episode(series.episodes[-1]) is None
