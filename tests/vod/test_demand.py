"""Prime-time arrivals and viewer behavior."""

from __future__ import annotations

import math
import random

import pytest

from repro.vod import VodConfig, prime_time_rate
from repro.vod.demand import _REGION_TZ, VodDemandGenerator
from repro.vod.engine import attach_vod

HOUR = 3600.0
DAY = 86400.0


class TestPrimeTimeRate:
    def test_peaks_at_the_peak_hour(self):
        tz = 0.0
        rates = {h: prime_time_rate(h * HOUR, tz) for h in range(24)}
        peak = max(rates, key=rates.get)
        assert peak in (20, 21)  # default peak_hour=20.5

    def test_overnight_floor_holds(self):
        for h in range(24):
            rate = prime_time_rate(h * HOUR, 0.0, floor=0.08)
            assert 0.08 <= rate <= 1.0

    def test_timezone_shifts_the_peak(self):
        # 20:30 local in a UTC+8 region is 12:30 UTC.
        utc8 = prime_time_rate(12.5 * HOUR, 8 * HOUR)
        utc0 = prime_time_rate(12.5 * HOUR, 0.0)
        assert utc8 > utc0
        assert utc8 == pytest.approx(1.0)

    def test_sharpness_narrows_the_peak(self):
        shoulder = 17.0 * HOUR
        soft = prime_time_rate(shoulder, 0.0, sharpness=1.0)
        hard = prime_time_rate(shoulder, 0.0, sharpness=6.0)
        assert hard < soft

    def test_daily_periodicity(self):
        assert prime_time_rate(5 * HOUR, 0.0) == pytest.approx(
            prime_time_rate(5 * HOUR + 3 * DAY, 0.0))


class TestRegionTable:
    def test_covers_the_provider_mix(self):
        # The vod provider's region_mix must resolve to real tz offsets.
        from repro.vod import build_vod_catalog

        catalog = build_vod_catalog(random.Random("t"), VodConfig())
        for region in catalog.provider.region_mix:
            assert region in _REGION_TZ


def _tiny_attached_system(sessions=30, policy="unrestricted", seed=5):
    from repro.core import NetSessionSystem

    system = NetSessionSystem(seed=seed)
    country = system.world.by_code["DE"]

    class Pop:
        peers = []

        @classmethod
        def iter_peers(cls):
            return iter(cls.peers)

    for _ in range(40):
        peer = system.create_peer(country=country, uploads_enabled=True)
        peer.boot()
        Pop.peers.append(peer)
    config = VodConfig(sessions=sessions, n_series=2, episodes_per_series=3,
                       episode_minutes=4.0, bitrate_kbps=1500.0,
                       policy=policy)
    runtime = attach_vod(system, Pop, config, seed=seed, duration_days=1.0)
    return system, runtime


class TestGenerator:
    def test_schedules_the_configured_sessions(self):
        system, runtime = _tiny_attached_system(sessions=25)
        assert runtime.sessions_scheduled == 25

    def test_arrivals_concentrate_in_prime_time(self):
        system, runtime = _tiny_attached_system(sessions=200)
        system.run(until=DAY)
        demand = runtime.demand
        started = demand.sessions_requested - demand.sessions_dropped
        assert demand.sessions_requested == 200
        assert started > 0
        assert system.vod.streams_started >= started

    def test_same_seed_same_arrival_schedule(self):
        a_sys, a_rt = _tiny_attached_system(sessions=40, seed=9)
        b_sys, b_rt = _tiny_attached_system(sessions=40, seed=9)
        a_sys.run(until=DAY)
        b_sys.run(until=DAY)
        assert a_sys.vod.snapshot() == b_sys.vod.snapshot()
        assert a_rt.demand.binge_started == b_rt.demand.binge_started

    def test_viewers_finish_short_episodes(self):
        system, runtime = _tiny_attached_system(sessions=40)
        system.run(until=2 * DAY)
        stats = system.vod.snapshot()
        assert stats.playbacks_finished > 0

    def test_arrival_times_respect_the_horizon(self):
        system, runtime = _tiny_attached_system(sessions=50)
        gen = runtime.demand
        horizon = 1.0 * DAY
        for region in ("Europe", "US East", "Oceania"):
            for _ in range(20):
                t = gen._sample_arrival_time(region, horizon)
                assert 0.0 <= t < horizon
