"""exp_vod_policies: planner shape, orchestrator parity, full sweep."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import planned_configs
from repro.experiments.exp_vod_policies import BASELINE, configs, run, variants
from repro.runner import Orchestrator
from repro.runner.fingerprint import fingerprint_config
from repro.vod import POLICY_NAMES, VodConfig
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
)


class TestPlanner:
    def test_one_config_per_variant(self):
        cfgs = configs("small", 42)
        assert len(cfgs) == len(variants()) == 1 + len(POLICY_NAMES)
        fps = [fingerprint_config(c) for c in cfgs]
        assert len(set(fps)) == len(fps), "variants must not share a cache key"

    def test_baseline_disables_p2p_globally(self):
        baseline = configs("small", 42)[0]
        assert variants()[0] == BASELINE
        assert baseline.system.p2p_globally_enabled is False
        assert baseline.vod is not None

    def test_policy_variants_cover_the_registry(self):
        cfgs = configs("small", 42)
        assert [c.vod.policy for c in cfgs[1:]] == list(POLICY_NAMES)
        for cfg in cfgs:
            assert cfg.vod.sessions > 0

    def test_prefetch_plan_matches_the_planner(self):
        planned = planned_configs("exp_vod_policies", "small", 42)
        assert [fingerprint_config(c) for c in planned] == \
            [fingerprint_config(c) for c in configs("small", 42)]


def _tiny_vod_configs():
    """Three sub-second scenarios with distinct policies, for pool parity."""
    base = ScenarioConfig(
        seed=5,
        duration_days=0.5,
        population=PopulationConfig(n_peers=60),
        demand=DemandConfig(total_downloads=20, duration_days=0.5),
        catalog=CatalogConfig(objects_per_provider=4),
    )
    return [
        dataclasses.replace(base, vod=VodConfig(
            sessions=12, n_series=2, episodes_per_series=2,
            episode_minutes=3.0, bitrate_kbps=800.0, policy=policy))
        for policy in ("unrestricted", "isp_local", "popularity_seeding")
    ]


class TestJobsParity:
    def test_pool_width_never_changes_vod_results(self):
        def resolve(jobs):
            arts = Orchestrator(jobs=jobs).run_many(_tiny_vod_configs())
            return [
                (a.fingerprint,
                 a.stats.vod,
                 [(r.guid, r.cid, r.started_at, r.ended_at, r.outcome,
                   r.rebuffer_events, r.startup_delay, r.peer_bytes)
                  for r in a.logstore.downloads if r.streamed])
                for a in arts
            ]

        assert resolve(1) == resolve(2)


@pytest.mark.slow
class TestFullSweep:
    def test_small_sweep_reports_qoe_and_transit_per_policy(self):
        out = run("small", 42)
        assert "peak transit" in out.text
        for name in (BASELINE, *POLICY_NAMES):
            key = name.replace("-", "_")
            assert f"{key}_offload" in out.metrics
            assert f"{key}_rebuffer_ratio" in out.metrics
            assert f"{key}_peak_transit_bytes" in out.metrics
            assert f"{key}_finished_rate" in out.metrics
        # The baseline never moves a peer byte; the policies must be able to.
        assert out.metrics["infra_cdn_offload"] == 0.0
        assert out.metrics["infra_cdn_peak_transit_bytes"] == 0.0
        assert out.metrics["unrestricted_peak_transit_bytes"] > 0.0
        assert out.metrics["isp_local_transit_saving_bytes"] >= 0.0
