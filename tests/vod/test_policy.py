"""Serving-policy unit behaviour: admits, widening, seeding, off-peak gate."""

from __future__ import annotations

import random

import pytest

from repro.core.control.database_node import PeerRegistration
from repro.core.selection import QueryContext
from repro.core.system import VodCounters
from repro.vod import (
    POLICY_NAMES, IspLocalOnlyPolicy, OffPeakPlacer, UnrestrictedPolicy,
    VodConfig, make_policy,
)

VOD_CID = "aaaa1111" * 8
OTHER_CID = "bbbb2222" * 8


def _query(asn=100, lan_id=""):
    return QueryContext(guid="viewer", asn=asn, country_code="DE",
                        region="Europe", nat_reported="open", lan_id=lan_id)


def _reg(cid=VOD_CID, asn=100, lan_id=""):
    return PeerRegistration(
        guid="holder", cid=cid, asn=asn, country_code="DE", region="Europe",
        nat_reported="open", uploads_enabled=True, registered_at=0.0,
        refreshed_at=0.0, lan_id=lan_id,
    )


class TestFactory:
    def test_every_registered_name_builds(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, [VOD_CID])
            assert policy.name == name
            assert VOD_CID in policy.vod_cids

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown serving policy"):
            make_policy("clairvoyant", [VOD_CID])


class TestUnrestricted:
    def test_admits_everyone_everywhere(self):
        policy = UnrestrictedPolicy([VOD_CID])
        assert policy.admits(_query(), _reg(asn=999))
        assert policy.allow_widening(_query(), VOD_CID)


class TestIspLocalOnly:
    def test_same_as_admitted(self):
        policy = IspLocalOnlyPolicy([VOD_CID])
        assert policy.admits(_query(asn=100), _reg(asn=100))

    def test_foreign_as_filtered_and_counted(self):
        counters = VodCounters()
        policy = IspLocalOnlyPolicy([VOD_CID], counters=counters)
        assert not policy.admits(_query(asn=100), _reg(asn=200))
        assert counters.policy_filtered == 1

    def test_same_lan_beats_the_as_check(self):
        policy = IspLocalOnlyPolicy([VOD_CID])
        assert policy.admits(_query(asn=100, lan_id="office-7"),
                             _reg(asn=200, lan_id="office-7"))

    def test_non_vod_cids_pass_through(self):
        counters = VodCounters()
        policy = IspLocalOnlyPolicy([VOD_CID], counters=counters)
        assert policy.admits(_query(asn=100), _reg(cid=OTHER_CID, asn=200))
        assert policy.allow_widening(_query(), OTHER_CID)
        assert counters.policy_filtered == 0

    def test_widening_vetoed_for_vod(self):
        policy = IspLocalOnlyPolicy([VOD_CID])
        assert not policy.allow_widening(_query(), VOD_CID)


class TestOffPeakPlacer:
    def _placer(self, system, window):
        from repro.core.placement import PlacementConfig

        return OffPeakPlacer(system, [], PlacementConfig(), window=window)

    def test_only_runs_inside_the_window(self, system):
        placer = self._placer(system, (2.0, 7.0))
        system.sim.run(until=4 * 3600.0)   # 04:00
        assert placer._should_run()
        system.sim.run(until=12 * 3600.0)  # noon
        assert not placer._should_run()

    def test_window_wraps_midnight(self, system):
        placer = self._placer(system, (23.0, 2.0))
        system.sim.run(until=23.5 * 3600.0)
        assert placer._should_run()
        system.sim.run(until=25 * 3600.0)  # 01:00 next day
        assert placer._should_run()
        system.sim.run(until=36 * 3600.0)  # noon next day
        assert not placer._should_run()

    def test_gated_tick_does_nothing(self, system):
        placer = self._placer(system, (2.0, 7.0))
        system.sim.run(until=12 * 3600.0)
        assert placer.tick() == 0


class TestPopularitySeeding:
    def test_pre_seed_plants_decay_weighted_copies(self, system):
        from repro.vod.catalog import build_vod_catalog

        config = VodConfig(n_series=3, episodes_per_series=4,
                           seed_copies_per_episode=2.0)
        catalog = build_vod_catalog(random.Random("t"), config)
        system.register_provider(catalog.provider)
        for ep in catalog.episodes():
            system.publish(ep.obj)

        class Pop:
            peers = [system.create_peer(uploads_enabled=True)
                     for _ in range(20)]

            @classmethod
            def iter_peers(cls):
                return iter(cls.peers)

        counters = VodCounters()
        policy = make_policy("popularity_seeding", [
            ep.obj.cid for ep in catalog.episodes()], counters=counters)
        seeded = policy.pre_seed(system, Pop, catalog, config,
                                 random.Random("s"))
        assert seeded > 0
        assert counters.copies_seeded == seeded
        held = sum(
            1 for p in Pop.peers for ep in catalog.episodes()
            if p.has_complete(ep.obj.cid)
        )
        assert held == seeded

    def test_pre_seed_noop_without_budget(self, system):
        from repro.vod.catalog import build_vod_catalog

        config = VodConfig(seed_copies_per_episode=0.0)
        catalog = build_vod_catalog(random.Random("t"), config)

        class Pop:
            peers = []

            @classmethod
            def iter_peers(cls):
                return iter(cls.peers)

        policy = make_policy("popularity_seeding", [])
        assert policy.pre_seed(system, Pop, catalog, config,
                               random.Random("s")) == 0


class TestInstall:
    def test_install_reaches_every_cn(self, system):
        policy = make_policy("isp_local", [VOD_CID])
        policy.install(system)
        for cn in system.control.all_cns:
            assert cn.serving_policy is policy
