"""QoE and peak-hour-transit analysis math, on hand-built records."""

from __future__ import annotations

import pytest

from repro.analysis.logstore import LogStore
from repro.analysis.qoe import (
    peak_hour_transit, peak_transit_total, qoe_summary, streamed_records,
)
from repro.analysis.records import DownloadRecord, LoginRecord
from repro.net.geo import GeoDatabase, GeoRecord

HOUR = 3600.0


def _stream_record(guid="v1", *, startup=4.0, rebuffer_time=0.0,
                   rebuffer_events=0, watched=1.0, outcome="completed",
                   peer=60, edge=40, started=0.0, ended=600.0,
                   uploaders=None, ip="10.0.0.1"):
    size = 100
    return DownloadRecord(
        guid=guid, url="vod/x.mp4", cid="c" * 64, cp_code=8001, size=size,
        started_at=started, ended_at=ended, edge_bytes=edge, peer_bytes=peer,
        p2p_enabled=True, outcome=outcome, ip=ip,
        per_uploader_bytes=dict(uploaders or {}),
        streamed=True, startup_delay=startup, rebuffer_time=rebuffer_time,
        rebuffer_events=rebuffer_events, watched_fraction=watched,
        bitrate=1.0,  # 1 byte/s: watch seconds == watched * size
    )


def _plain_record():
    return DownloadRecord(
        guid="d1", url="x.bin", cid="d" * 64, cp_code=1, size=50,
        started_at=0.0, ended_at=100.0, edge_bytes=50, peer_bytes=0,
        p2p_enabled=True, outcome="completed",
    )


class TestQoeSummary:
    def test_empty_trace_is_all_zero(self):
        summary = qoe_summary(LogStore())
        assert summary["sessions"] == 0.0
        assert summary["rebuffer_ratio"] == 0.0

    def test_plain_downloads_are_ignored(self):
        logs = LogStore()
        logs.add_download(_plain_record())
        logs.add_download(_stream_record())
        assert len(streamed_records(logs)) == 1
        assert qoe_summary(logs)["sessions"] == 1.0

    def test_rebuffer_ratio_is_stall_over_stall_plus_watch(self):
        logs = LogStore()
        # watched 1.0 of a 100-byte video at 1 B/s => 100 s watch time.
        logs.add_download(_stream_record(rebuffer_time=25.0))
        summary = qoe_summary(logs)
        assert summary["rebuffer_ratio"] == pytest.approx(25.0 / 125.0)

    def test_startup_percentiles_skip_never_started(self):
        logs = LogStore()
        for delay in (2.0, 4.0, 8.0):
            logs.add_download(_stream_record(startup=delay))
        logs.add_download(_stream_record(startup=None, outcome="aborted",
                                         watched=0.0))
        summary = qoe_summary(logs)
        assert summary["startup_p50"] == pytest.approx(4.0)
        assert summary["never_started"] == pytest.approx(0.25)
        assert summary["abandoned"] == pytest.approx(0.25)

    def test_peer_offload_over_stream_bytes_only(self):
        logs = LogStore()
        logs.add_download(_stream_record(peer=75, edge=25))
        logs.add_download(_plain_record())  # 100% edge, must not dilute
        assert qoe_summary(logs)["peer_offload"] == pytest.approx(0.75)


def _geo(asn):
    return GeoRecord(country_code="DE", region="Europe", city="x",
                     lat=0.0, lon=0.0, timezone="UTC", network=f"AS{asn}",
                     asn=asn)


def _transit_logs():
    """Uploader u1 in AS 10; viewers v1 (AS 20) and v2 (AS 10)."""
    logs = LogStore()
    geodb = GeoDatabase()
    geodb.register("1.1.1.1", _geo(10))
    geodb.register("2.2.2.2", _geo(20))
    geodb.register("3.3.3.3", _geo(10))
    logs.add_login(LoginRecord(guid="u1", ip="1.1.1.1", timestamp=0.0,
                               software_version="v", uploads_enabled=True))
    return logs, geodb


class TestPeakHourTransit:
    def test_inter_as_bytes_attributed_to_uploader_as(self):
        logs, geodb = _transit_logs()
        logs.add_download(_stream_record(
            guid="v1", ip="2.2.2.2", started=0.0, ended=600.0,
            uploaders={"u1": 3000}))
        peaks = peak_hour_transit(logs, geodb)
        assert peaks == {10: pytest.approx(3000.0)}

    def test_intra_as_bytes_never_count(self):
        logs, geodb = _transit_logs()
        logs.add_download(_stream_record(
            guid="v2", ip="3.3.3.3", started=0.0, ended=600.0,
            uploaders={"u1": 3000}))
        assert peak_hour_transit(logs, geodb) == {}

    def test_long_transfers_spread_over_hours(self):
        logs, geodb = _transit_logs()
        # 2 h transfer: each hour carries half; the peak is half the bytes.
        logs.add_download(_stream_record(
            guid="v1", ip="2.2.2.2", started=0.0, ended=2 * HOUR,
            uploaders={"u1": 8000}))
        peaks = peak_hour_transit(logs, geodb)
        assert peaks[10] == pytest.approx(4000.0)

    def test_peak_is_max_not_sum(self):
        logs, geodb = _transit_logs()
        logs.add_download(_stream_record(
            guid="v1", ip="2.2.2.2", started=0.0, ended=600.0,
            uploaders={"u1": 1000}))
        logs.add_download(_stream_record(
            guid="v1", ip="2.2.2.2", started=5 * HOUR, ended=5 * HOUR + 600,
            uploaders={"u1": 7000}))
        assert peak_hour_transit(logs, geodb)[10] == pytest.approx(7000.0)

    def test_streamed_only_flag(self):
        logs, geodb = _transit_logs()
        plain = _plain_record()
        plain.ip = "2.2.2.2"
        plain.per_uploader_bytes = {"u1": 500}
        logs.add_download(plain)
        assert peak_hour_transit(logs, geodb) == {}
        assert peak_hour_transit(logs, geodb, streamed_only=False)[10] == \
            pytest.approx(500.0)

    def test_total_sums_per_as_peaks(self):
        assert peak_transit_total({10: 5.0, 20: 7.0}) == 12.0
        assert peak_transit_total({}) == 0.0
