"""End-to-end VoD scenarios: attachment, policies under swarms, parity."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import ContentObject, ContentProvider, NetSessionSystem
from repro.core.peer import CacheEntry
from repro.core.streaming import start_streaming
from repro.vod import VodConfig, make_policy
from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig,
    run_scenario,
)

HOUR = 3600.0
MB = 1024 * 1024


def _tiny_vod_scenario(policy="unrestricted", *, sessions=40, seed=11):
    return ScenarioConfig(
        seed=seed,
        duration_days=1.0,
        population=PopulationConfig(n_peers=150),
        demand=DemandConfig(total_downloads=60, duration_days=1.0),
        catalog=CatalogConfig(objects_per_provider=6),
        vod=VodConfig(sessions=sessions, n_series=2, episodes_per_series=3,
                      episode_minutes=5.0, bitrate_kbps=1500.0,
                      policy=policy),
    )


class TestScenarioAttachment:
    def test_vod_none_attaches_nothing(self):
        result = run_scenario(ScenarioConfig(
            seed=3, duration_days=0.5,
            population=PopulationConfig(n_peers=60),
            demand=DemandConfig(total_downloads=20, duration_days=0.5),
            catalog=CatalogConfig(objects_per_provider=4),
        ))
        assert result.vod_runtime is None
        assert result.system.vod.snapshot().streams_started == 0
        assert not any(r.streamed for r in result.logstore.downloads)

    def test_vod_runs_and_logs_streams(self):
        result = run_scenario(_tiny_vod_scenario())
        runtime = result.vod_runtime
        assert runtime is not None
        assert runtime.sessions_scheduled == 40
        stats = result.system.stats().vod
        assert stats.streams_started > 0
        streamed = [r for r in result.logstore.downloads if r.streamed]
        assert streamed
        assert {r.cp_code for r in streamed} == {8001}

    def test_vod_stats_surface_in_system_stats_dict(self):
        result = run_scenario(_tiny_vod_scenario())
        as_dict = result.system.stats().as_dict()
        assert as_dict["vod_streams_started"] > 0

    def test_download_trace_identical_until_first_stream(self):
        # Same seed with and without the streaming layer: attaching VoD
        # consumes no draw from any download RNG, so until the first
        # viewing session arrives the download trace must be identical
        # byte for byte — the no-new-RNG-draws contract behind the golden
        # parity of the default experiments.  (After the first stream the
        # traces legitimately diverge through shared world state: viewers
        # get booted, peers get busy, and the demand generator's runtime
        # eligibility retries observe that.)
        base = _tiny_vod_scenario(seed=3)  # seed with pre-stream downloads
        with_vod = run_scenario(base)
        without_vod = run_scenario(dataclasses.replace(base, vod=None))
        first_vod = min(r.started_at for r in with_vod.logstore.downloads
                        if r.streamed)

        def pre_stream(logs):
            return sorted(
                (r.guid, r.cid, r.started_at, r.ended_at, r.outcome,
                 r.edge_bytes, r.peer_bytes)
                for r in logs.downloads
                if not r.streamed and r.cp_code != 8001
                and r.ended_at < first_vod
            )

        head = pre_stream(with_vod.logstore)
        assert head, "scenario too small: no downloads before the first stream"
        assert head == pre_stream(without_vod.logstore)

    def test_vod_scenario_is_deterministic(self):
        a = run_scenario(_tiny_vod_scenario())
        b = run_scenario(_tiny_vod_scenario())
        assert a.system.vod.snapshot() == b.system.vod.snapshot()
        key = lambda r: (r.guid, r.cid, r.started_at, r.ended_at,  # noqa: E731
                         r.outcome, r.rebuffer_events, r.startup_delay)
        assert [key(r) for r in a.logstore.downloads if r.streamed] == \
            [key(r) for r in b.logstore.downloads if r.streamed]

    def test_policies_produce_distinct_traces(self):
        seeding = run_scenario(_tiny_vod_scenario("popularity_seeding"))
        assert seeding.system.vod.snapshot().copies_seeded > 0
        assert seeding.vod_runtime.copies_seeded > 0


class TestIspLocalTinyIsp:
    """The fragile corner of isp_local: a viewer whose AS holds no copy.

    The policy filters every candidate and vetoes cross-region widening,
    so the swarm contributes nothing — and the edge backstop must carry
    the whole stream without ever stalling playback.
    """

    def _scene(self, system):
        provider = ContentProvider(cp_code=8001, name="CatchUpTV")
        provider_obj = ContentObject(
            "vod/lonely/ep-00.mp4", 60 * MB, provider, p2p_enabled=True,
        )
        system.publish(provider_obj)
        de = system.world.by_code["DE"]
        jp = system.world.by_code["JP"]
        for _ in range(10):
            seeder = system.create_peer(country=de, uploads_enabled=True)
            seeder.cache[provider_obj.cid] = CacheEntry(
                cid=provider_obj.cid, completed_at=0.0)
            seeder.boot()
        viewer = system.create_peer(country=jp, uploads_enabled=True)
        viewer.boot()
        return provider_obj, viewer

    def test_degrades_to_edge_and_never_stalls(self):
        system = NetSessionSystem(seed=21)
        video, viewer = self._scene(system)
        policy = make_policy("isp_local", [video.cid], counters=system.vod)
        policy.install(system)
        session = start_streaming(viewer, video, bitrate=0.4 * MB,
                                  startup_buffer_s=5.0)
        system.run(until=4 * HOUR)
        assert session.peer_bytes == 0, "a foreign-AS peer served the stream"
        report = session.qoe_report()
        assert report["finished"] == 1.0
        assert report["rebuffer_events"] == 0.0

    def test_unrestricted_baseline_uses_the_swarm(self):
        # Control: identical scene without the policy finds the DE seeders
        # once the local pool is empty and the search widens.
        system = NetSessionSystem(seed=21)
        video, viewer = self._scene(system)
        session = start_streaming(viewer, video, bitrate=0.4 * MB,
                                  startup_buffer_s=5.0)
        system.run(until=4 * HOUR)
        assert session.qoe_report()["finished"] == 1.0
        assert session.peer_bytes > 0
