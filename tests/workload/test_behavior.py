"""Tests for the user-behaviour model."""

from __future__ import annotations

import pytest

from repro.core import NetSessionSystem
from repro.workload.behavior import BehaviorConfig, UserBehavior
from repro.workload.population import DAY, Population


def make_population(system, n=50, uploads_enabled=True):
    peers = [system.create_peer(uploads_enabled=uploads_enabled)
             for _ in range(n)]
    return Population(peers=peers, tz_offset={p.guid: 0.0 for p in peers},
                      always_on=set())


class TestAbandonment:
    def test_slow_download_gets_abandoned(self, system, provider):
        from repro.core import ContentObject
        obj = ContentObject("big.bin", 4 * 1024 ** 3, provider, p2p_enabled=False)
        system.publish(obj)
        behavior = UserBehavior(system, BehaviorConfig(
            patience_median=30.0, patience_sigma=0.01, abort_vs_pause=1.0))
        peer = system.create_peer()
        peer.boot()
        session = peer.start_download(obj)
        behavior.attach(session)
        system.run(until=DAY)
        assert session.state == "aborted"
        assert behavior.abandonments == 1

    def test_fast_download_outruns_patience(self, system, provider):
        from repro.core import ContentObject
        obj = ContentObject("small.bin", 1024 * 1024, provider)
        system.publish(obj)
        behavior = UserBehavior(system, BehaviorConfig(
            patience_median=DAY, patience_sigma=0.01))
        peer = system.create_peer()
        peer.boot()
        session = peer.start_download(obj)
        behavior.attach(session)
        system.run(until=DAY * 2)
        assert session.state == "completed"
        assert behavior.abandonments == 0

    def test_nearly_done_download_not_abandoned(self, system, provider):
        from repro.core import ContentObject
        obj = ContentObject("f.bin", 100 * 1024 * 1024, provider)
        system.publish(obj)
        behavior = UserBehavior(system, BehaviorConfig(
            patience_median=1.0, patience_sigma=0.01, abort_vs_pause=1.0))
        peer = system.create_peer()
        peer.boot()
        session = peer.start_download(obj)
        # Simulate near-completion before patience fires.
        session.received = set(range(int(obj.num_pieces * 0.95)))
        behavior.attach(session)
        system.run(until=3600.0)
        assert session.state == "completed"

    def test_other_failure_kills_download(self, system, provider):
        from repro.core import ContentObject
        # Big enough that the failure (30s..4h in) strikes mid-download on
        # any access link.
        obj = ContentObject("big.bin", 400 * 1024 ** 3, provider)
        system.publish(obj)
        behavior = UserBehavior(system, BehaviorConfig(
            other_failure_prob=1.0, patience_median=DAY * 100))
        peer = system.create_peer()
        peer.boot()
        session = peer.start_download(obj)
        behavior.attach(session)
        system.run(until=DAY)
        assert session.state == "failed"
        assert session.failure_class == "other"
        assert behavior.other_failures == 1


class TestSettingChanges:
    def test_toggle_rates_roughly_match_table3(self, system):
        population = make_population(system, n=4000, uploads_enabled=True)
        behavior = UserBehavior(system, BehaviorConfig())
        scheduled = behavior.schedule_setting_changes(population, 30.0)
        # ~1.9% of enabled peers toggle at least once; 4000 peers -> ~76.
        assert 20 <= scheduled <= 200

    def test_disabled_peers_rarely_toggle(self, system):
        population = make_population(system, n=4000, uploads_enabled=False)
        behavior = UserBehavior(system, BehaviorConfig())
        scheduled = behavior.schedule_setting_changes(population, 30.0)
        assert scheduled <= 15

    def test_toggles_flip_the_setting(self, system):
        population = make_population(system, n=30, uploads_enabled=True)
        behavior = UserBehavior(system, BehaviorConfig(
            toggle_once_if_enabled=1.0, toggle_twice_if_enabled=0.0))
        behavior.schedule_setting_changes(population, 1.0)
        system.run(until=DAY)
        assert all(not p.uploads_enabled for p in population.peers)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BehaviorConfig(patience_median=0.0)
        with pytest.raises(ValueError):
            BehaviorConfig(other_failure_prob=2.0)


class TestBusyLinks:
    def test_busy_periods_toggle_backoff(self, system):
        population = make_population(system, n=40)
        for p in population.peers:
            p.boot()
        behavior = UserBehavior(system, BehaviorConfig())
        scheduled = behavior.schedule_link_busy_periods(population, 5.0)
        assert scheduled > 0
        # Run through the trace: every peer must end up un-throttled again.
        system.run(until=5 * DAY)
        assert all(not p.link_busy for p in population.peers)

    def test_zero_probability_schedules_nothing(self, system):
        from repro.core import NetSessionSystem, SystemConfig
        quiet = NetSessionSystem(
            SystemConfig().with_client(link_busy_prob_per_hour=0.0), seed=4)
        peers = [quiet.create_peer() for _ in range(10)]
        population = Population(peers=peers,
                                tz_offset={p.guid: 0.0 for p in peers},
                                always_on=set())
        behavior = UserBehavior(quiet, BehaviorConfig())
        assert behavior.schedule_link_busy_periods(population, 5.0) == 0
