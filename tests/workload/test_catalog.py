"""Tests for catalog synthesis."""

from __future__ import annotations

import random

import pytest

from repro.workload.catalog import (
    Catalog, CatalogConfig, PAPER_CUSTOMERS, build_catalog,
)

MB = 1024 * 1024


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(random.Random(1), CatalogConfig())


class TestStructure:
    def test_ten_providers(self, catalog):
        assert len(catalog.providers) == 10

    def test_objects_per_provider(self, catalog):
        cfg = CatalogConfig()
        for provider in catalog.providers:
            assert len(catalog.by_provider[provider.cp_code]) == cfg.objects_per_provider

    def test_table4_rates_applied(self, catalog):
        rates = {p.name: p.upload_default_rate for p in catalog.providers}
        assert rates["Customer D"] == 0.94
        assert rates["Customer A"] == 0.005

    def test_region_mixes_normalised(self, catalog):
        for provider in catalog.providers:
            assert sum(provider.region_mix.values()) == pytest.approx(1.0)

    def test_customer_f_is_europe_only(self, catalog):
        f = next(p for p in catalog.providers if p.name == "Customer F")
        assert set(f.region_mix) == {"Europe"}


class TestP2PGating:
    def test_download_manager_only_providers_have_no_p2p(self, catalog):
        """Providers with ~0 upload defaults use NetSession as a pure DLM."""
        p2p_cps = {o.provider.cp_code for o in catalog.p2p_objects()}
        for index, (name, rate, _mix) in enumerate(PAPER_CUSTOMERS):
            cp = 1001 + index
            if rate < CatalogConfig().p2p_provider_threshold:
                assert cp not in p2p_cps, name

    def test_global_p2p_file_fraction_near_target(self, catalog):
        frac = len(catalog.p2p_objects()) / len(catalog.objects)
        assert frac == pytest.approx(0.017, abs=0.01)

    def test_p2p_objects_are_large(self, catalog):
        cfg = CatalogConfig()
        for obj in catalog.p2p_objects():
            assert obj.size >= cfg.large_size_range[0]

    def test_small_objects_within_range(self, catalog):
        cfg = CatalogConfig()
        for obj in catalog.objects:
            if not obj.p2p_enabled:
                assert obj.size <= cfg.small_size_range[1] * 1.01


class TestSampling:
    def test_popularity_weights_decrease_with_rank(self, catalog):
        for provider in catalog.providers:
            weights = catalog.provider_weights(provider.cp_code)
            assert weights == sorted(weights, reverse=True)

    def test_sample_object_returns_catalog_member(self, catalog):
        rng = random.Random(3)
        for _ in range(20):
            assert catalog.sample_object(rng) in catalog.objects

    def test_head_sampled_more_than_tail(self, catalog):
        rng = random.Random(3)
        provider = catalog.providers[0]
        objects = catalog.by_provider[provider.cp_code]
        counts = {o.cid: 0 for o in objects}
        weights = catalog.provider_weights(provider.cp_code)
        for _ in range(2000):
            pick = rng.choices(objects, weights=weights, k=1)[0]
            counts[pick.cid] += 1
        assert counts[objects[0].cid] > counts[objects[-1].cid]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CatalogConfig(objects_per_provider=0)
        with pytest.raises(ValueError):
            CatalogConfig(p2p_enabled_fraction=1.5)
