"""Tests for the cloning/re-imaging model."""

from __future__ import annotations

import pytest

from repro.analysis.guid_graphs import (
    build_secondary_guid_graphs, classify_graph, figure12_pattern_census,
)
from repro.core import NetSessionSystem
from repro.workload.cloning import CloningConfig, CloningModel
from repro.workload.population import DAY, Population


def make_population(system, n):
    peers = [system.create_peer() for _ in range(n)]
    return Population(peers=peers, tz_offset={p.guid: 0.0 for p in peers},
                      always_on=set())


def boot_daily(system, peers, days):
    for peer in peers:
        for day in range(days):
            system.sim.schedule_at(day * DAY + 3600.0, peer.boot)
            system.sim.schedule_at(day * DAY + 10 * 3600.0, peer.go_offline)


class TestCensus:
    def test_affected_fraction_respected(self, system):
        population = make_population(system, 2000)
        model = CloningModel(system, CloningConfig(affected_fraction=0.1))
        census = model.apply(population, 7.0)
        affected = sum(census.values())
        assert affected == pytest.approx(200, abs=60)

    def test_zero_affected(self, system):
        population = make_population(system, 100)
        model = CloningModel(system, CloningConfig(affected_fraction=0.0))
        census = model.apply(population, 7.0)
        assert sum(census.values()) == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CloningConfig(affected_fraction=1.5)
        with pytest.raises(ValueError):
            CloningConfig(failed_update_weight=-1.0)


class TestPatternsEmerge:
    def run_pattern(self, pattern_weights, days=8):
        system = NetSessionSystem(seed=21)
        population = make_population(system, 40)
        boot_daily(system, population.peers, days)
        cfg = CloningConfig(affected_fraction=1.0, **pattern_weights)
        model = CloningModel(system, cfg)
        model.apply(population, float(days))
        system.run(until=days * DAY)
        return system, model

    def test_failed_update_produces_short_branch(self):
        system, model = self.run_pattern(dict(
            failed_update_weight=1.0, restored_backup_weight=0.0,
            reimaging_weight=0.0, irregular_weight=0.0))
        census = figure12_pattern_census(system.logstore)
        assert census.get("one_short_branch", 0.0) > 0.0

    def test_restored_backup_produces_long_branches(self):
        system, model = self.run_pattern(dict(
            failed_update_weight=0.0, restored_backup_weight=1.0,
            reimaging_weight=0.0, irregular_weight=0.0))
        census = figure12_pattern_census(system.logstore)
        assert census.get("two_long_branches", 0.0) > 0.0

    def test_reimaging_produces_several_branches(self):
        system, model = self.run_pattern(dict(
            failed_update_weight=0.0, restored_backup_weight=0.0,
            reimaging_weight=1.0, irregular_weight=0.0))
        census = figure12_pattern_census(system.logstore)
        assert census.get("several_branches", 0.0) > 0.0

    def test_unaffected_installs_stay_linear(self):
        system = NetSessionSystem(seed=22)
        population = make_population(system, 30)
        boot_daily(system, population.peers, 8)
        system.run(until=8 * DAY)
        census = figure12_pattern_census(system.logstore)
        assert census.get("linear", 0.0) == 1.0


class TestIrregularPattern:
    def test_irregular_produces_some_nonlinear_history(self):
        system = NetSessionSystem(seed=23)
        population = make_population(system, 30)
        boot_daily(system, population.peers, 8)
        model = CloningModel(system, CloningConfig(
            affected_fraction=1.0, failed_update_weight=0.0,
            restored_backup_weight=0.0, reimaging_weight=0.0,
            irregular_weight=1.0))
        model.apply(population, 8.0)
        system.run(until=8 * DAY)
        census = figure12_pattern_census(system.logstore)
        assert census.get("linear", 1.0) < 1.0  # chaos left a mark
