"""Tests for the demand generator."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import NetSessionSystem
from repro.workload.catalog import CatalogConfig, build_catalog
from repro.workload.demand import DemandConfig, DemandGenerator
from repro.workload.population import DAY, PopulationConfig, build_population


@pytest.fixture
def env():
    system = NetSessionSystem(seed=9)
    catalog = build_catalog(random.Random(2), CatalogConfig(objects_per_provider=15))
    for p in catalog.providers:
        system.register_provider(p)
    for o in catalog.objects:
        system.publish(o)
    population = build_population(system, catalog.providers,
                                  PopulationConfig(n_peers=200))
    return system, catalog, population


class TestScheduling:
    def test_schedule_all_counts(self, env):
        system, catalog, population = env
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=100, duration_days=2.0))
        assert gen.schedule_all() == 100

    def test_requests_become_downloads(self, env):
        system, catalog, population = env
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=120, duration_days=2.0))
        gen.schedule_all()
        system.run(until=2 * DAY)
        assert gen.requests_issued + gen.requests_dropped == 120
        assert gen.requests_issued > 100  # few drops at this scale
        assert len(system.logstore.downloads) > 0

    def test_sessions_reported_via_callback(self, env):
        system, catalog, population = env
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=50, duration_days=1.0))
        seen = []
        gen.on_session_started = seen.append
        gen.schedule_all()
        system.run(until=DAY)
        assert len(seen) == gen.requests_issued

    def test_provider_shares_steer_volume(self, env):
        system, catalog, population = env
        shares = tuple([1.0] + [0.0001] * 9)
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=150, duration_days=1.0,
                                           provider_shares=shares))
        gen.schedule_all()
        system.run(until=DAY)
        cps = Counter(r.cp_code for r in system.logstore.downloads)
        assert cps.get(1001, 0) > 0.8 * sum(cps.values())

    def test_region_mix_steers_location(self, env):
        system, catalog, population = env
        # Customer F is Europe-only per Table 2.
        shares = tuple([0.0001] * 5 + [1.0] + [0.0001] * 4)
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=100, duration_days=1.0,
                                           provider_shares=shares))
        gen.schedule_all()
        system.run(until=DAY)
        regions = Counter()
        for rec in system.logstore.downloads:
            geo = system.geodb.get(rec.ip)
            if geo:
                regions[geo.region] += 1
        assert regions.get("Europe", 0) > 0.9 * sum(regions.values())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DemandConfig(total_downloads=0)
        with pytest.raises(ValueError):
            DemandConfig(duration_days=0.0)

    def test_arrival_times_within_horizon(self, env):
        system, catalog, population = env
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=50, duration_days=1.0))
        gen.schedule_all()
        system.run(until=5 * DAY)
        for rec in system.logstore.downloads:
            assert rec.started_at <= DAY + 1.0


class TestDiurnalCdf:
    def test_cdf_monotone_and_positive(self):
        from repro.workload.demand import _diurnal_cdf
        cdf = _diurnal_cdf(2 * DAY, tz=0.0)
        assert len(cdf) == 48
        assert all(b > a for a, b in zip(cdf, cdf[1:]))

    def test_arrivals_follow_diurnal_mass(self, env):
        """More arrivals land in local-evening hours than early-morning."""
        system, catalog, population = env
        gen = DemandGenerator(system, population, catalog,
                              DemandConfig(total_downloads=400, duration_days=4.0))
        times = [gen._sample_arrival_time("Europe", 4 * DAY)
                 for _ in range(800)]
        tz = gen.config.region_tz["Europe"]
        def local_hour(t):
            return ((t + tz) % DAY) / 3600.0
        evening = sum(1 for t in times if 17 <= local_hour(t) <= 23)
        morning = sum(1 for t in times if 1 <= local_hour(t) <= 7)
        assert evening > 1.5 * morning
