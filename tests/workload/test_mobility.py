"""Tests for the mobility model."""

from __future__ import annotations

import pytest

from repro.core import NetSessionSystem
from repro.workload.mobility import MobilityConfig, MobilityModel
from repro.workload.population import DAY, Population


def make_population(system, n):
    peers = [system.create_peer() for _ in range(n)]
    for p in peers:
        p.boot()
    return Population(peers=peers, tz_offset={p.guid: 0.0 for p in peers},
                      always_on={p.guid for p in peers})


class TestClasses:
    def test_census_sums_to_population(self, system):
        population = make_population(system, 200)
        model = MobilityModel(system)
        census = model.apply(population, 5.0)
        assert sum(census.values()) == 200

    def test_class_mix_roughly_configured(self, system):
        population = make_population(system, 1000)
        cfg = MobilityConfig()
        model = MobilityModel(system, cfg)
        census = model.apply(population, 5.0)
        assert census["commuter"] / 1000 == pytest.approx(
            cfg.commuter_fraction, abs=0.04)
        assert census["stationary"] > 700

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            MobilityConfig(commuter_fraction=0.9, roamer_fraction=0.2)


class TestMovement:
    def test_commuters_change_as(self, system):
        population = make_population(system, 150)
        model = MobilityModel(system, MobilityConfig(
            commuter_fraction=1.0, roamer_fraction=0.0, traveler_fraction=0.0,
            commuter_as_change_prob=1.0))
        model.apply(population, 3.0)
        system.run(until=3 * DAY)
        multi_as = 0
        by_guid = system.logstore.logins_by_guid()
        for guid, logins in by_guid.items():
            ases = {system.geodb.get(r.ip).asn for r in logins
                    if system.geodb.get(r.ip)}
            if len(ases) > 1:
                multi_as += 1
        assert multi_as > 0.7 * len(by_guid)

    def test_stationary_peers_never_move(self, system):
        population = make_population(system, 80)
        model = MobilityModel(system, MobilityConfig(
            commuter_fraction=0.0, roamer_fraction=0.0, traveler_fraction=0.0))
        model.apply(population, 3.0)
        system.run(until=3 * DAY)
        by_guid = system.logstore.logins_by_guid()
        for guid, logins in by_guid.items():
            ases = {system.geodb.get(r.ip).asn for r in logins
                    if system.geodb.get(r.ip)}
            assert len(ases) == 1

    def test_travelers_move_far(self, system):
        from repro.net.geo import haversine_km
        population = make_population(system, 60)
        model = MobilityModel(system, MobilityConfig(
            commuter_fraction=0.0, roamer_fraction=0.0, traveler_fraction=1.0))
        model.apply(population, 4.0)
        system.run(until=4 * DAY)
        far = 0
        by_guid = system.logstore.logins_by_guid()
        for guid, logins in by_guid.items():
            points = []
            for r in logins:
                geo = system.geodb.get(r.ip)
                if geo:
                    points.append((geo.lat, geo.lon))
            max_d = max(
                (haversine_km(*a, *b) for a in points for b in points),
                default=0.0)
            if max_d > 100.0:
                far += 1
        assert far > 0.5 * len(by_guid)
