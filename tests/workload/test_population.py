"""Tests for population synthesis and the session process."""

from __future__ import annotations

import random

import pytest

from repro.core import NetSessionSystem
from repro.workload.catalog import CatalogConfig, build_catalog
from repro.workload.population import (
    DAY, PopulationConfig, build_population, diurnal_rate,
)


@pytest.fixture
def built():
    system = NetSessionSystem(seed=5)
    catalog = build_catalog(random.Random(1), CatalogConfig(objects_per_provider=10))
    population = build_population(
        system, catalog.providers, PopulationConfig(n_peers=150))
    return system, population


class TestSynthesis:
    def test_population_size(self, built):
        _system, population = built
        assert population.peer_count() == 150

    def test_upload_mix_reflects_providers(self, built):
        _system, population = built
        enabled = sum(1 for p in population.peers if p.uploads_enabled)
        # Weighted mean of Table 4 rates is ~30%; loose bounds at n=150.
        assert 0.1 <= enabled / 150 <= 0.6

    def test_broken_fraction_applied(self):
        system = NetSessionSystem(seed=5)
        catalog = build_catalog(random.Random(1), CatalogConfig(objects_per_provider=5))
        population = build_population(
            system, catalog.providers,
            PopulationConfig(n_peers=300, broken_fraction=0.5,
                             broken_corruption_prob=0.9))
        broken = sum(1 for p in population.peers
                     if p.piece_corruption_prob == 0.9)
        assert 100 <= broken <= 200

    def test_attacker_fraction_applied(self):
        system = NetSessionSystem(seed=5)
        catalog = build_catalog(random.Random(1), CatalogConfig(objects_per_provider=5))
        population = build_population(
            system, catalog.providers,
            PopulationConfig(n_peers=200, attacker_fraction=0.25))
        attackers = sum(1 for p in population.peers if p.accounting_attacker)
        assert 20 <= attackers <= 80

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_peers=0)
        with pytest.raises(ValueError):
            PopulationConfig(mean_daily_uptime_hours=25.0)


class TestSessions:
    def test_peers_come_online_during_first_day(self, built):
        system, population = built
        system.run(until=1.5 * DAY)
        assert system.online_peer_count() > 0.3 * population.peer_count()

    def test_daily_cycle_produces_multiple_logins(self, built):
        system, population = built
        system.run(until=4 * DAY)
        by_guid = system.logstore.logins_by_guid()
        multi = sum(1 for logins in by_guid.values() if len(logins) >= 2)
        assert multi > 0.3 * len(by_guid)

    def test_always_on_peers_stay_online(self, built):
        system, population = built
        system.run(until=3 * DAY)
        for peer in population.peers:
            if peer.guid in population.always_on:
                assert peer.online


class TestDiurnal:
    def test_rate_bounded(self):
        for hour in range(24):
            rate = diurnal_rate(hour * 3600.0)
            assert 0.1 <= rate <= 1.0

    def test_evening_peak_exceeds_morning_trough(self):
        assert diurnal_rate(20 * 3600.0) > 2 * diurnal_rate(4 * 3600.0)

    def test_timezone_shift_moves_peak(self):
        # 8am UTC is evening in a +12h zone.
        assert diurnal_rate(8 * 3600.0, tz_offset=12 * 3600.0) > diurnal_rate(8 * 3600.0)
