"""Integration tests for the scenario driver."""

from __future__ import annotations

import pytest

from repro.workload import (
    CatalogConfig, DemandConfig, PopulationConfig, ScenarioConfig, run_scenario,
)


@pytest.fixture(scope="module")
def tiny_result():
    cfg = ScenarioConfig(
        seed=5, duration_days=1.5,
        population=PopulationConfig(n_peers=120),
        catalog=CatalogConfig(objects_per_provider=8),
        demand=DemandConfig(total_downloads=150, duration_days=1.5),
    )
    return run_scenario(cfg)


class TestScenarioRun:
    def test_downloads_happen(self, tiny_result):
        assert len(tiny_result.logstore.downloads) > 50

    def test_logins_happen(self, tiny_result):
        assert len(tiny_result.logstore.logins) >= 120 * 0.5

    def test_no_open_sessions_after_finalize(self, tiny_result):
        for peer in tiny_result.system.all_peers:
            assert peer.sessions == {}

    def test_every_download_has_terminal_outcome(self, tiny_result):
        for rec in tiny_result.logstore.downloads:
            assert rec.outcome in ("completed", "failed", "aborted")

    def test_mobility_census_covers_population(self, tiny_result):
        assert sum(tiny_result.mobility_census.values()) == 120

    def test_geodb_covers_all_logged_ips(self, tiny_result):
        for rec in tiny_result.logstore.logins:
            assert tiny_result.geodb.get(rec.ip) is not None


class TestDeterminism:
    def test_same_seed_same_trace(self):
        cfg = ScenarioConfig(
            seed=77, duration_days=0.5,
            population=PopulationConfig(n_peers=60),
            catalog=CatalogConfig(objects_per_provider=5),
            demand=DemandConfig(total_downloads=40, duration_days=0.5),
        )
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        sig_a = [(r.guid, r.cid, r.outcome, r.edge_bytes, r.peer_bytes)
                 for r in a.logstore.downloads]
        sig_b = [(r.guid, r.cid, r.outcome, r.edge_bytes, r.peer_bytes)
                 for r in b.logstore.downloads]
        assert sig_a == sig_b
        assert len(a.logstore.logins) == len(b.logstore.logins)

    def test_different_seed_different_trace(self):
        base = dict(duration_days=0.5,
                    population=PopulationConfig(n_peers=60),
                    catalog=CatalogConfig(objects_per_provider=5),
                    demand=DemandConfig(total_downloads=40, duration_days=0.5))
        a = run_scenario(ScenarioConfig(seed=1, **base))
        b = run_scenario(ScenarioConfig(seed=2, **base))
        assert ({r.guid for r in a.logstore.downloads}
                != {r.guid for r in b.logstore.downloads})
